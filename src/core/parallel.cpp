#include "core/parallel.hpp"

#include <algorithm>

namespace asa_repro::fsm {

unsigned hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned resolve_jobs(unsigned jobs) {
  return jobs == 0 ? hardware_jobs() : jobs;
}

ThreadPool::ThreadPool(unsigned jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_ - 1);
  for (unsigned i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this] {
      std::uint64_t seen = 0;
      for (;;) {
        Task* task = nullptr;
        {
          std::unique_lock lock(m_);
          wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
          if (stop_) return;
          seen = epoch_;
          // The task may already be fully claimed (or retired) by the time
          // this worker wakes; registering as active under the lock keeps
          // the caller from destroying it while we run.
          if (task_ != nullptr && task_->next < task_->count) {
            task = task_;
            ++active_;
          }
        }
        if (task != nullptr) {
          run_chunks(*task);
          {
            std::lock_guard lock(m_);
            --active_;
          }
          done_cv_.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_chunks(Task& task) const {
  for (;;) {
    std::uint64_t begin;
    {
      std::lock_guard lock(m_);
      if (task.next >= task.count) return;
      begin = task.next;
      task.next = std::min(task.count, begin + task.chunk);
    }
    const std::uint64_t end = std::min(task.count, begin + task.chunk);
    try {
      (*task.body)(begin, end);
    } catch (...) {
      // Keep the exception from the lowest chunk so failures are as
      // deterministic as the results (remaining chunks still run).
      std::lock_guard lock(m_);
      const std::uint64_t chunk_index = begin / task.chunk;
      if (chunk_index < task.error_chunk) {
        task.error_chunk = chunk_index;
        task.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::for_range(
    std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) const {
  if (count == 0) return;
  if (workers_.empty()) {
    body(0, count);
    return;
  }

  Task task;
  task.body = &body;
  task.count = count;
  // ~4 chunks per lane balances load without fragmenting tiny ranges.
  const std::uint64_t target_chunks =
      std::min<std::uint64_t>(count, std::uint64_t{jobs_} * 4);
  task.chunk = (count + target_chunks - 1) / target_chunks;

  {
    std::lock_guard lock(m_);
    task_ = &task;
    ++epoch_;
  }
  wake_cv_.notify_all();

  run_chunks(task);  // The caller is a lane too.

  {
    std::unique_lock lock(m_);
    done_cv_.wait(lock,
                  [&] { return active_ == 0 && task.next >= task.count; });
    task_ = nullptr;
  }
  if (task.error) std::rethrow_exception(task.error);
}

}  // namespace asa_repro::fsm
