// Generative-code utilities (paper section 4.1, Fig 18).
//
// Generative code that accumulates source text in a string buffer is hard
// to read; the paper's remedy is a small set of utility methods — add,
// addLn, enterBlock, exitBlock, indent control — that remove explicit
// string concatenation and explicit whitespace from the generator. Without
// them "there is a direct trade-off between readability of generative and
// generated code". CodeBuffer is those utilities as a class.
#pragma once

#include <string>
#include <string_view>

namespace asa_repro::fsm {

/// An output buffer for generated source code with automatic indentation
/// and block management (paper Fig 18).
class CodeBuffer {
 public:
  explicit CodeBuffer(std::string indent_unit = "    ",
                      std::string open_brace = "{",
                      std::string close_brace = "}")
      : indent_unit_(std::move(indent_unit)),
        open_brace_(std::move(open_brace)),
        close_brace_(std::move(close_brace)) {}

  /// Adds the specified items to the output buffer.
  template <typename... Items>
  void add(Items&&... items) {
    maybe_indent();
    (append(std::string_view(items)), ...);
  }

  /// Adds the specified items to the output buffer, with newline.
  template <typename... Items>
  void add_ln(Items&&... items) {
    add(std::forward<Items>(items)...);
    newline();
  }

  /// Emits a blank line (indentation-free).
  void blank_line() {
    if (!at_line_start_) newline();
    buffer_.push_back('\n');
  }

  /// Opens a new block ("{" on its own line) and increases the indent level.
  void enter_block() {
    add_ln(open_brace_);
    increase_indent();
  }

  /// Exits the current block and decreases the indent level.
  void exit_block(std::string_view suffix = "") {
    decrease_indent();
    add_ln(close_brace_, suffix);
  }

  /// Increases the indent level.
  void increase_indent() { ++indent_level_; }

  /// Decreases the indent level.
  void decrease_indent() {
    if (indent_level_ > 0) --indent_level_;
  }

  /// Resets indentation to column zero.
  void reset_indent() { indent_level_ = 0; }

  [[nodiscard]] int indent_level() const { return indent_level_; }
  [[nodiscard]] const std::string& str() const { return buffer_; }
  [[nodiscard]] std::string take() { return std::move(buffer_); }

 private:
  void maybe_indent() {
    if (!at_line_start_) return;
    for (int i = 0; i < indent_level_; ++i) buffer_ += indent_unit_;
    at_line_start_ = false;
  }
  void append(std::string_view text) { buffer_ += text; }
  void newline() {
    buffer_.push_back('\n');
    at_line_start_ = true;
  }

  std::string indent_unit_;
  std::string open_brace_;
  std::string close_brace_;
  std::string buffer_;
  int indent_level_ = 0;
  bool at_line_start_ = true;
};

/// Convert a message or action name like "not_free" to CamelCase
/// ("NotFree"), for receiveNotFree() / sendNotFree() method names in
/// generated source (paper Fig 16 naming).
[[nodiscard]] std::string to_camel_case(std::string_view name);

/// Convert a state name like "T/2/F/0/F/F/F" to a C++ identifier fragment
/// ("T_2_F_0_F_F_F"); Fig 16 uses the dash form, which is not a valid C++
/// identifier, so '/', '-' and other separators map to '_'.
[[nodiscard]] std::string to_identifier(std::string_view name);

}  // namespace asa_repro::fsm
