// Concrete finite state machine representation (paper Fig 5).
//
// A StateMachine is the output of executing an abstract model with a
// concrete parameter value: a collection of named states linked by
// transitions, one start state, and (after merging) a single finish state.
// States and transitions carry annotations used by the documentation
// renderers (paper Fig 14's automatically generated commentary).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace asa_repro::fsm {

/// Index of a state within StateMachine::states().
using StateId = std::uint32_t;

/// Index of a message within StateMachine::messages().
using MessageId = std::uint32_t;

inline constexpr StateId kNoState = std::numeric_limits<StateId>::max();

/// Names of outgoing actions performed on a transition (e.g. "vote",
/// "commit", "not_free"). Rendered as "->vote" in textual artefacts and
/// bound to action methods (sendVote()) in generated source.
using ActionList = std::vector<std::string>;

/// One transition: on receipt of `message`, perform `actions` (in order)
/// and move to `target`.
struct Transition {
  MessageId message = 0;
  ActionList actions;
  StateId target = kNoState;
  std::vector<std::string> annotations;
};

/// One state of the machine.
struct State {
  std::string name;
  std::vector<Transition> transitions;  // At most one per message.
  std::vector<std::string> annotations;
  bool is_final = false;

  /// The transition for `message`, or nullptr if the message is not
  /// applicable in this state (the paper's InvalidStateException case).
  [[nodiscard]] const Transition* transition(MessageId message) const {
    for (const auto& t : transitions) {
      if (t.message == message) return &t;
    }
    return nullptr;
  }
};

/// A generated finite state machine (paper Fig 5's StateMachine class).
class StateMachine {
 public:
  StateMachine() = default;
  StateMachine(std::vector<std::string> messages, std::vector<State> states,
               StateId start, StateId finish)
      : messages_(std::move(messages)),
        states_(std::move(states)),
        start_(start),
        finish_(finish) {}

  [[nodiscard]] const std::vector<std::string>& messages() const {
    return messages_;
  }
  [[nodiscard]] const std::vector<State>& states() const { return states_; }
  [[nodiscard]] std::vector<State>& states() { return states_; }
  [[nodiscard]] const State& state(StateId id) const { return states_[id]; }

  /// Start state id.
  [[nodiscard]] StateId start() const { return start_; }

  /// Finish state id, or kNoState if the machine has no reachable finish.
  [[nodiscard]] StateId finish() const { return finish_; }

  [[nodiscard]] std::size_t state_count() const { return states_.size(); }

  /// Message id for `name`, if known.
  [[nodiscard]] std::optional<MessageId> message_id(
      std::string_view name) const {
    for (std::size_t i = 0; i < messages_.size(); ++i) {
      if (messages_[i] == name) return static_cast<MessageId>(i);
    }
    return std::nullopt;
  }

  /// State id for `name`, if known (linear scan; intended for tests and
  /// tools, not hot paths).
  [[nodiscard]] std::optional<StateId> state_id(std::string_view name) const {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i].name == name) return static_cast<StateId>(i);
    }
    return std::nullopt;
  }

  /// Total number of transitions across all states.
  [[nodiscard]] std::size_t transition_count() const {
    std::size_t n = 0;
    for (const auto& s : states_) n += s.transitions.size();
    return n;
  }

 private:
  std::vector<std::string> messages_;
  std::vector<State> states_;
  StateId start_ = kNoState;
  StateId finish_ = kNoState;
};

}  // namespace asa_repro::fsm
