// Dense-table compiled dispatch backend.
//
// The interpreter (core/interpreter.hpp) walks the generated StateMachine's
// per-state transition vectors — a linear scan over heap-allocated
// structures on every delivered message. Production FSMs dispatch through
// flat arrays instead: one contiguous [state][event] table whose cells are
// fixed-size packed records, so the hot path is a single indexed load with
// no allocation, no pointer chasing and no branching on applicability.
// CompiledMachine is that backend: compile() flattens any generated machine
// (including EFSM-expanded family members) into
//
//   * a dense table of CompiledRecord{next, span} cells, one per
//     (state, event) pair — events not applicable in a state self-loop
//     with an empty action span, so the hot loop never tests a null;
//   * an out-of-line action arena: all transition action lists laid end to
//     end as 16-bit action ids, referenced by (offset, count) spans packed
//     into 32 bits;
//   * a perfect-hash event decoder mapping message names to their dense
//     event ids in one hash + one string compare.
//
// The backend is certified against the interpreter: to_state_machine()
// reconstructs an equivalent StateMachine from the table, and fsmcheck's
// backend group proves trace equivalence over the whole family via
// find_family_divergence (see src/check/backend.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/state_machine.hpp"

namespace asa_repro::fsm {

/// One [state][event] cell. `span` packs the action reference:
///   bit 31        applicable flag (the machine has a transition for this
///                 (state, event); clear cells are synthetic self-loops)
///   bits 30..4    offset of the first action id in the arena
///   bits  3..0    action count
/// The hot loop needs only `next` and the low count bits, so dispatch is
/// two loads from one 8-byte record and no conditional.
struct CompiledRecord {
  std::uint32_t next = 0;
  std::uint32_t span = 0;
};

inline constexpr std::uint32_t kCompiledApplicableBit = 0x8000'0000u;
inline constexpr std::uint32_t kCompiledCountBits = 4;
inline constexpr std::uint32_t kCompiledCountMask =
    (1u << kCompiledCountBits) - 1;
inline constexpr std::uint32_t kCompiledOffsetMask =
    (kCompiledApplicableBit - 1) >> kCompiledCountBits;
/// Longest action list a packed span can reference.
inline constexpr std::uint32_t kCompiledMaxActions = kCompiledCountMask;
/// Largest arena offset a packed span can reference.
inline constexpr std::uint32_t kCompiledMaxArenaOffset = kCompiledOffsetMask;

/// Perfect-hash decoder from message names to dense event ids. Built by
/// seed search: the table size is the smallest power of two holding every
/// name collision-free under the seeded hash, so decode() is one hash, one
/// slot load, and one confirming string compare (the compare makes unknown
/// names safe, not slower: known names still take exactly one probe).
class EventDecoder {
 public:
  EventDecoder() = default;

  /// Build over a duplicate-free vocabulary (throws std::invalid_argument
  /// on duplicates — a perfect hash cannot distinguish equal keys).
  explicit EventDecoder(std::vector<std::string> names);

  /// Event id for `name`, or nullopt if the name is not in the vocabulary.
  [[nodiscard]] std::optional<MessageId> decode(std::string_view name) const {
    if (slots_.empty()) return std::nullopt;
    const std::int32_t id =
        slots_[hash(name, seed_) & (slots_.size() - 1)];
    if (id < 0 || names_[static_cast<std::size_t>(id)] != name) {
      return std::nullopt;
    }
    return static_cast<MessageId>(id);
  }

  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t table_size() const { return slots_.size(); }

 private:
  [[nodiscard]] static std::uint64_t hash(std::string_view s,
                                          std::uint64_t seed);

  std::vector<std::string> names_;
  std::vector<std::int32_t> slots_;  // Event id per slot, -1 = empty.
  std::uint64_t seed_ = 0;
};

/// A StateMachine flattened into the dense dispatch layout. Immutable once
/// compiled; many CompiledInstance runtimes may share one machine, exactly
/// as FsmInstances share a StateMachine.
class CompiledMachine {
 public:
  /// Flatten `machine`. Throws std::invalid_argument on machines the
  /// layout cannot hold (no states, ids out of range, more than
  /// kCompiledMaxActions actions on one transition, duplicate (state,
  /// event) transitions, arena overflow) — all conditions fsmcheck's
  /// structural lints reject first on generated machines.
  [[nodiscard]] static CompiledMachine compile(const StateMachine& machine);

  [[nodiscard]] const CompiledRecord& record(StateId state,
                                             MessageId event) const {
    return table_[static_cast<std::size_t>(state) * events_ + event];
  }
  [[nodiscard]] static bool applicable(std::uint32_t span) {
    return (span & kCompiledApplicableBit) != 0;
  }
  [[nodiscard]] static std::uint32_t count_of(std::uint32_t span) {
    return span & kCompiledCountMask;
  }
  [[nodiscard]] static std::uint32_t offset_of(std::uint32_t span) {
    return (span >> kCompiledCountBits) & kCompiledOffsetMask;
  }

  /// First action id of `rec`'s span (valid for count_of(rec.span) ids).
  [[nodiscard]] const std::uint16_t* arena_at(const CompiledRecord& rec)
      const {
    return arena_.data() + offset_of(rec.span);
  }

  [[nodiscard]] std::uint32_t state_count() const { return states_; }
  [[nodiscard]] std::uint32_t event_count() const { return events_; }
  [[nodiscard]] StateId start() const { return start_; }
  [[nodiscard]] StateId finish() const { return finish_; }
  [[nodiscard]] bool is_final(StateId state) const {
    return final_[state] != 0;
  }
  [[nodiscard]] const std::string& state_name(StateId state) const {
    return state_names_[state];
  }
  [[nodiscard]] const std::vector<std::string>& messages() const {
    return decoder_.names();
  }
  [[nodiscard]] const EventDecoder& decoder() const { return decoder_; }
  [[nodiscard]] const std::vector<std::string>& action_names() const {
    return action_names_;
  }
  [[nodiscard]] std::size_t arena_size() const { return arena_.size(); }
  [[nodiscard]] const std::vector<std::uint16_t>& arena() const {
    return arena_;
  }
  [[nodiscard]] const std::vector<CompiledRecord>& table() const {
    return table_;
  }

  /// Reconstruct an equivalent StateMachine from the table (message
  /// vocabulary, state names, finality, transitions with named actions;
  /// annotations are not carried through the layout). This is the backend's
  /// equivalence obligation made checkable: find_divergence(original,
  /// compiled.to_state_machine()) must find nothing, and fsmcheck's backend
  /// group asserts exactly that across the family.
  [[nodiscard]] StateMachine to_state_machine() const;

 private:
  std::uint32_t states_ = 0;
  std::uint32_t events_ = 0;
  StateId start_ = 0;
  StateId finish_ = kNoState;
  std::vector<CompiledRecord> table_;    // states_ * events_ cells.
  std::vector<std::uint16_t> arena_;     // Out-of-line action id lists.
  std::vector<std::string> action_names_;  // Id -> name, first-seen order.
  std::vector<std::uint8_t> final_;      // Finality per state.
  std::vector<std::string> state_names_;
  EventDecoder decoder_;
};

/// A running instance over a compiled machine — the dense-table counterpart
/// of FsmInstance, with identical deliver semantics (inapplicable messages,
/// including anything after finish, are reported and leave the state
/// unchanged because their cells self-loop).
class CompiledInstance {
 public:
  explicit CompiledInstance(const CompiledMachine& machine)
      : machine_(&machine), state_(machine.start()) {}

  /// The actions of one delivery: `count` ids starting at `ids`, resolvable
  /// through CompiledMachine::action_names(). `applicable` is false when
  /// the message had no transition (the interpreter's nullptr case).
  struct Delivery {
    const std::uint16_t* ids = nullptr;
    std::uint32_t count = 0;
    bool applicable = false;
  };

  Delivery deliver(MessageId event) {
    const CompiledRecord& rec = machine_->record(state_, event);
    state_ = rec.next;
    return {machine_->arena_at(rec), CompiledMachine::count_of(rec.span),
            CompiledMachine::applicable(rec.span)};
  }

  [[nodiscard]] const CompiledMachine& machine() const { return *machine_; }
  [[nodiscard]] StateId state() const { return state_; }
  [[nodiscard]] const std::string& state_name() const {
    return machine_->state_name(state_);
  }
  [[nodiscard]] bool finished() const { return machine_->is_final(state_); }
  void reset() { state_ = machine_->start(); }

 private:
  const CompiledMachine* machine_;
  StateId state_;
};

/// Benchmark-shaped copy of the dispatch table: every cell whose target is
/// final is redirected to the start state — the throughput harness's
/// "deliver, then reset when finished" fold, made branch-free. `span` is
/// replaced by the raw action count, and `next` holds the successor's ROW
/// OFFSET (state id pre-multiplied by the event count), so the dependent
/// chain per message is an add and one 8-byte load — no multiply:
///   rec = fused[row + event]; actions += rec.span; row = rec.next;
/// starting from row = machine.start() * machine.event_count(). Divide a
/// row by the event count to recover the state id.
[[nodiscard]] std::vector<CompiledRecord> reset_fused_table(
    const CompiledMachine& machine);

}  // namespace asa_repro::fsm
