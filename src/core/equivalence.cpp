#include "core/equivalence.hpp"

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace asa_repro::fsm {

namespace {

std::string message_name(const StateMachine& m, MessageId id) {
  return id < m.messages().size() ? m.messages()[id]
                                  : "#" + std::to_string(id);
}

}  // namespace

std::optional<Divergence> find_divergence(const StateMachine& a,
                                          const StateMachine& b) {
  if (a.messages() != b.messages()) {
    return Divergence{{}, "message vocabularies differ"};
  }

  struct Node {
    StateId sa;
    StateId sb;
    std::vector<MessageId> trace;
  };

  const auto key = [](StateId sa, StateId sb) {
    return (std::uint64_t{sa} << 32) | sb;
  };

  std::unordered_set<std::uint64_t> visited;
  std::deque<Node> queue;
  queue.push_back({a.start(), b.start(), {}});
  visited.insert(key(a.start(), b.start()));

  while (!queue.empty()) {
    Node n = std::move(queue.front());
    queue.pop_front();
    const State& sa = a.state(n.sa);
    const State& sb = b.state(n.sb);

    if (sa.is_final != sb.is_final) {
      return Divergence{n.trace, "finality differs ('" + sa.name + "' vs '" +
                                     sb.name + "')"};
    }

    for (MessageId m = 0; m < a.messages().size(); ++m) {
      const Transition* ta = sa.transition(m);
      const Transition* tb = sb.transition(m);
      if ((ta == nullptr) != (tb == nullptr)) {
        auto trace = n.trace;
        trace.push_back(m);
        return Divergence{trace, "applicability of '" + message_name(a, m) +
                                     "' differs in '" + sa.name + "' vs '" +
                                     sb.name + "'"};
      }
      if (ta == nullptr) continue;
      if (ta->actions != tb->actions) {
        auto trace = n.trace;
        trace.push_back(m);
        return Divergence{trace, "actions for '" + message_name(a, m) +
                                     "' differ in '" + sa.name + "' vs '" +
                                     sb.name + "'"};
      }
      if (visited.insert(key(ta->target, tb->target)).second) {
        auto trace = n.trace;
        trace.push_back(m);
        queue.push_back({ta->target, tb->target, std::move(trace)});
      }
    }
  }
  return std::nullopt;
}

}  // namespace asa_repro::fsm
