#include "core/equivalence.hpp"

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/parallel.hpp"

namespace asa_repro::fsm {

namespace {

std::string message_name(const StateMachine& m, MessageId id) {
  return id < m.messages().size() ? m.messages()[id]
                                  : "#" + std::to_string(id);
}

/// One frontier entry: a product-space node plus the trace that reached it.
struct Node {
  StateId sa;
  StateId sb;
  std::vector<MessageId> trace;
};

/// What examining one node yields: either the first divergence at that node
/// (scanning messages in ascending order, exactly like the serial search),
/// or the list of successor product states in message order.
struct NodeResult {
  std::optional<Divergence> divergence;
  std::vector<std::tuple<MessageId, StateId, StateId>> successors;
};

NodeResult examine(const StateMachine& a, const StateMachine& b,
                   const Node& n) {
  NodeResult result;
  const State& sa = a.state(n.sa);
  const State& sb = b.state(n.sb);

  if (sa.is_final != sb.is_final) {
    result.divergence = Divergence{n.trace, "finality differs ('" + sa.name +
                                               "' vs '" + sb.name + "')"};
    return result;
  }

  for (MessageId m = 0; m < a.messages().size(); ++m) {
    const Transition* ta = sa.transition(m);
    const Transition* tb = sb.transition(m);
    if ((ta == nullptr) != (tb == nullptr)) {
      auto trace = n.trace;
      trace.push_back(m);
      result.divergence =
          Divergence{std::move(trace), "applicability of '" +
                                           message_name(a, m) +
                                           "' differs in '" + sa.name +
                                           "' vs '" + sb.name + "'"};
      return result;
    }
    if (ta == nullptr) continue;
    if (ta->actions != tb->actions) {
      auto trace = n.trace;
      trace.push_back(m);
      result.divergence =
          Divergence{std::move(trace), "actions for '" + message_name(a, m) +
                                           "' differ in '" + sa.name +
                                           "' vs '" + sb.name + "'"};
      return result;
    }
    result.successors.emplace_back(m, ta->target, tb->target);
  }
  return result;
}

}  // namespace

std::optional<Divergence> find_divergence(const StateMachine& a,
                                          const StateMachine& b,
                                          unsigned jobs) {
  if (a.messages() != b.messages()) {
    return Divergence{{}, "message vocabularies differ"};
  }

  const auto key = [](StateId sa, StateId sb) {
    return (std::uint64_t{sa} << 32) | sb;
  };

  // Level-synchronous BFS over the product space. Each frontier is the
  // FIFO queue segment of one depth, in discovery order; examining its
  // nodes is the expensive part (action-list comparisons) and runs chunked
  // on the pool into index-addressed slots. The serial merge then replays
  // results in discovery order — first divergence wins, successors dedup
  // against `visited` in (node, message) order — so both the witness and
  // the visit order are identical to a serial FIFO search.
  const ThreadPool pool(jobs);
  std::unordered_set<std::uint64_t> visited;
  std::vector<Node> frontier;
  frontier.push_back({a.start(), b.start(), {}});
  visited.insert(key(a.start(), b.start()));

  std::vector<NodeResult> results;
  while (!frontier.empty()) {
    results.assign(frontier.size(), {});
    pool.for_range(frontier.size(), [&](std::uint64_t chunk_begin,
                                        std::uint64_t chunk_end) {
      for (std::uint64_t i = chunk_begin; i < chunk_end; ++i) {
        results[i] = examine(a, b, frontier[i]);
      }
    });

    std::vector<Node> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (results[i].divergence.has_value()) {
        return std::move(results[i].divergence);
      }
      for (const auto& [m, ta, tb] : results[i].successors) {
        if (visited.insert(key(ta, tb)).second) {
          auto trace = frontier[i].trace;
          trace.push_back(m);
          next.push_back({ta, tb, std::move(trace)});
        }
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

std::optional<FamilyDivergence> find_family_divergence(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<StateMachine(std::uint64_t)>& a,
    const std::function<StateMachine(std::uint64_t)>& b, unsigned jobs) {
  for (std::uint64_t p = lo; p <= hi; ++p) {
    if (auto d = find_divergence(a(p), b(p), jobs); d.has_value()) {
      return FamilyDivergence{p, std::move(*d)};
    }
  }
  return std::nullopt;
}

std::string format_trace(const StateMachine& machine,
                         const std::vector<MessageId>& trace) {
  if (trace.empty()) return "<empty trace>";
  std::string out;
  for (MessageId m : trace) {
    if (!out.empty()) out += ", ";
    out += message_name(machine, m);
  }
  return out;
}

}  // namespace asa_repro::fsm
