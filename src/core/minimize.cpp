#include "core/minimize.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace asa_repro::fsm {

namespace {

/// Distinguishing signature of a state under a given partition: finality
/// plus, per message, the action list and the destination's class. Message
/// ids are naturally ordered because transitions are generated in message
/// order.
struct Signature {
  bool is_final;
  std::uint32_t current_class;
  std::vector<std::tuple<MessageId, ActionList, std::uint32_t>> rows;

  bool operator<(const Signature& other) const {
    if (is_final != other.is_final) return is_final < other.is_final;
    if (current_class != other.current_class) {
      return current_class < other.current_class;
    }
    return rows < other.rows;
  }
};

Signature signature_of(const State& s, const std::vector<std::uint32_t>& cls,
                       std::uint32_t own_class, bool refine) {
  Signature sig;
  sig.is_final = s.is_final;
  // During refinement a state can only stay in (a subdivision of) its own
  // class; when coalescing from the identity partition this constraint is
  // dropped so that distinct states may merge.
  sig.current_class = refine ? own_class : 0;
  sig.rows.reserve(s.transitions.size());
  for (const Transition& t : s.transitions) {
    sig.rows.emplace_back(t.message, t.actions, cls[t.target]);
  }
  return sig;
}

StateMachine rebuild(const StateMachine& machine,
                     const std::vector<std::uint32_t>& cls,
                     std::uint32_t class_count,
                     std::vector<StateId>* state_class) {
  // Representative of each class: the lowest-numbered member.
  std::vector<StateId> rep(class_count, kNoState);
  std::vector<std::uint32_t> member_count(class_count, 0);
  for (StateId i = 0; i < machine.state_count(); ++i) {
    const std::uint32_t c = cls[i];
    ++member_count[c];
    if (rep[c] == kNoState) rep[c] = i;
  }

  // Order output classes by representative so merged machines enumerate in
  // the same order as their inputs (stable artefacts, stable diffs).
  std::vector<std::uint32_t> order(class_count);
  for (std::uint32_t c = 0; c < class_count; ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return rep[a] < rep[b]; });
  std::vector<StateId> class_to_output(class_count);
  for (std::uint32_t o = 0; o < class_count; ++o) {
    class_to_output[order[o]] = static_cast<StateId>(o);
  }

  std::vector<State> states(class_count);
  for (std::uint32_t c = 0; c < class_count; ++c) {
    const StateId out = class_to_output[c];
    const State& r = machine.state(rep[c]);
    State s;
    s.name = r.name;
    s.is_final = r.is_final;
    s.annotations = r.annotations;
    if (member_count[c] > 1) {
      std::string merged = "Represents " + std::to_string(member_count[c]) +
                           " equivalent states:";
      std::size_t listed = 0;
      for (StateId i = 0; i < machine.state_count() && listed < 12; ++i) {
        if (cls[i] == c) {
          merged += ' ' + machine.state(i).name;
          ++listed;
        }
      }
      if (member_count[c] > listed) merged += " ...";
      s.annotations.push_back(std::move(merged));
    }
    s.transitions = r.transitions;
    for (Transition& t : s.transitions) {
      t.target = class_to_output[cls[t.target]];
    }
    states[out] = std::move(s);
  }

  const StateId start = class_to_output[cls[machine.start()]];
  StateId finish = kNoState;
  for (StateId i = 0; i < states.size(); ++i) {
    if (states[i].is_final) {
      finish = i;
      break;
    }
  }

  if (state_class != nullptr) {
    state_class->resize(machine.state_count());
    for (StateId i = 0; i < machine.state_count(); ++i) {
      (*state_class)[i] = class_to_output[cls[i]];
    }
  }
  return StateMachine(machine.messages(), std::move(states), start, finish);
}

/// One coalescing round: group states with identical signatures under the
/// partition `cls`. Returns the new class count.
std::uint32_t coalesce(const StateMachine& machine,
                       std::vector<std::uint32_t>& cls, bool refine) {
  std::map<Signature, std::uint32_t> groups;
  std::vector<std::uint32_t> next(machine.state_count());
  for (StateId i = 0; i < machine.state_count(); ++i) {
    Signature sig = signature_of(machine.state(i), cls, cls[i], refine);
    const auto [it, inserted] =
        groups.emplace(std::move(sig), static_cast<std::uint32_t>(groups.size()));
    next[i] = it->second;
  }
  cls = std::move(next);
  return static_cast<std::uint32_t>(groups.size());
}

}  // namespace

StateMachine minimize(const StateMachine& machine,
                      std::vector<StateId>* state_class) {
  // Moore-style partition refinement: start from the coarsest partition
  // (everything equivalent) and split classes whose members disagree on
  // finality, applicable messages, actions, or the class of a destination,
  // until stable. The fixpoint is the coarsest behavioural equivalence —
  // the paper's "combine any sets of equivalent states" run to completion.
  // (A greedy bottom-up merge of identical-successor states, as the paper's
  // wording might also suggest, can fail to combine bisimilar states on
  // cycles; refinement cannot. merge_once() exposes one greedy round for
  // the ablation bench.)
  if (machine.state_count() == 0) return machine;
  std::vector<std::uint32_t> cls(machine.state_count(), 0);
  std::uint32_t count = 1;
  for (;;) {
    const std::uint32_t new_count = coalesce(machine, cls, /*refine=*/true);
    if (new_count == count) break;
    count = new_count;
  }
  return rebuild(machine, cls, count, state_class);
}

StateMachine merge_once(const StateMachine& machine,
                        std::vector<StateId>* state_class) {
  if (machine.state_count() == 0) return machine;
  std::vector<std::uint32_t> cls(machine.state_count());
  for (StateId i = 0; i < machine.state_count(); ++i) cls[i] = i;
  const std::uint32_t count = coalesce(machine, cls, /*refine=*/false);
  return rebuild(machine, cls, count, state_class);
}

}  // namespace asa_repro::fsm
