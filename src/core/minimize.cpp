#include "core/minimize.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/parallel.hpp"

namespace asa_repro::fsm {

namespace {

/// Run a chunked index range on `pool`, or inline when no pool is supplied.
void run(const ThreadPool* pool, std::uint64_t count,
         const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (pool != nullptr) {
    pool->for_range(count, body);
  } else {
    if (count > 0) body(0, count);
  }
}

/// The distinguishing signature of a state under a partition is its
/// finality plus, per transition (in message order), the action list and
/// the destination's class. Action lists are interned up front — equal
/// lists get equal ids — so each round's signatures are flat u64 sequences:
///
///   [ is_final, current_class, (message, action_id, class)* ]
///
/// This is equality-preserving with respect to the original
/// (bool, class, (message, ActionList, class)*) tuples, and cheap enough to
/// recompute and hash in parallel every refinement round.
struct SignatureTable {
  std::size_t state_count = 0;
  std::vector<std::uint64_t> trans_data;  // Triples (message, action_id, target).
  std::vector<std::size_t> trans_off;     // Per state, into trans_data; n+1.
  std::vector<std::size_t> sig_off;       // Per state, into buf; n+1.
  std::vector<std::uint64_t> buf;         // Round-scratch signature storage.
  std::vector<std::uint64_t> hash;        // Per-state signature hash.
};

SignatureTable build_signature_table(const StateMachine& machine) {
  SignatureTable table;
  const std::size_t n = machine.state_count();
  table.state_count = n;

  // Interning iterates states and transitions in order, so action ids are
  // deterministic; only id equality matters for grouping anyway.
  std::map<ActionList, std::uint64_t> action_ids;
  table.trans_off.resize(n + 1, 0);
  table.sig_off.resize(n + 1, 0);
  for (StateId i = 0; i < n; ++i) {
    const State& s = machine.state(i);
    table.trans_off[i + 1] = table.trans_off[i] + s.transitions.size();
    table.sig_off[i + 1] = table.sig_off[i] + 2 + 3 * s.transitions.size();
    for (const Transition& t : s.transitions) {
      const auto [it, inserted] =
          action_ids.emplace(t.actions, action_ids.size());
      table.trans_data.push_back(t.message);
      table.trans_data.push_back(it->second);
      table.trans_data.push_back(t.target);
    }
  }
  table.buf.resize(table.sig_off[n]);
  table.hash.resize(n);
  return table;
}

std::uint64_t fnv1a(const std::uint64_t* data, std::size_t count) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = data[i];
    for (int b = 0; b < 8; ++b) {
      h ^= v & 0xff;
      h *= 1099511628211ULL;
      v >>= 8;
    }
  }
  return h;
}

/// One coalescing round: group states with identical signatures under the
/// partition `cls`. Signature construction and hashing run chunked on the
/// pool; class ids are then assigned by a serial scan in ascending state
/// order, so the resulting partition (and its numbering) is independent of
/// thread interleaving. Returns the new class count.
std::uint32_t coalesce(const StateMachine& machine, SignatureTable& table,
                       std::vector<std::uint32_t>& cls, bool refine,
                       const ThreadPool* pool) {
  const std::size_t n = table.state_count;
  run(pool, n, [&](std::uint64_t chunk_begin, std::uint64_t chunk_end) {
    for (std::uint64_t i = chunk_begin; i < chunk_end; ++i) {
      std::uint64_t* sig = table.buf.data() + table.sig_off[i];
      std::uint64_t* out = sig;
      *out++ = machine.state(static_cast<StateId>(i)).is_final ? 1 : 0;
      // During refinement a state can only stay in (a subdivision of) its
      // own class; when coalescing from the identity partition this
      // constraint is dropped so that distinct states may merge.
      *out++ = refine ? cls[i] : 0;
      const std::uint64_t* t = table.trans_data.data() + 3 * table.trans_off[i];
      const std::uint64_t* t_end =
          table.trans_data.data() + 3 * table.trans_off[i + 1];
      for (; t != t_end; t += 3) {
        *out++ = t[0];                 // message
        *out++ = t[1];                 // action id
        *out++ = cls[t[2]];            // destination's class
      }
      table.hash[i] = fnv1a(sig, table.sig_off[i + 1] - table.sig_off[i]);
    }
  });

  // Buckets map a hash to the states first seen with it; true equality is
  // confirmed by comparing full signatures, so hash collisions only cost
  // time, never correctness.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  buckets.reserve(n);
  std::vector<std::uint32_t> next(n);
  std::uint32_t class_count = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t* sig_i = table.buf.data() + table.sig_off[i];
    const std::size_t len_i = table.sig_off[i + 1] - table.sig_off[i];
    std::vector<std::uint32_t>& bucket = buckets[table.hash[i]];
    bool matched = false;
    for (const std::uint32_t rep : bucket) {
      const std::size_t len_r = table.sig_off[rep + 1] - table.sig_off[rep];
      if (len_r == len_i &&
          std::equal(sig_i, sig_i + len_i,
                     table.buf.data() + table.sig_off[rep])) {
        next[i] = next[rep];
        matched = true;
        break;
      }
    }
    if (!matched) {
      bucket.push_back(i);
      next[i] = class_count++;
    }
  }
  cls = std::move(next);
  return class_count;
}

StateMachine rebuild(const StateMachine& machine,
                     const std::vector<std::uint32_t>& cls,
                     std::uint32_t class_count,
                     std::vector<StateId>* state_class) {
  // Representative of each class: the lowest-numbered member.
  std::vector<StateId> rep(class_count, kNoState);
  std::vector<std::uint32_t> member_count(class_count, 0);
  for (StateId i = 0; i < machine.state_count(); ++i) {
    const std::uint32_t c = cls[i];
    ++member_count[c];
    if (rep[c] == kNoState) rep[c] = i;
  }

  // Order output classes by representative so merged machines enumerate in
  // the same order as their inputs (stable artefacts, stable diffs).
  std::vector<std::uint32_t> order(class_count);
  for (std::uint32_t c = 0; c < class_count; ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return rep[a] < rep[b]; });
  std::vector<StateId> class_to_output(class_count);
  for (std::uint32_t o = 0; o < class_count; ++o) {
    class_to_output[order[o]] = static_cast<StateId>(o);
  }

  std::vector<State> states(class_count);
  for (std::uint32_t c = 0; c < class_count; ++c) {
    const StateId out = class_to_output[c];
    const State& r = machine.state(rep[c]);
    State s;
    s.name = r.name;
    s.is_final = r.is_final;
    s.annotations = r.annotations;
    if (member_count[c] > 1) {
      std::string merged = "Represents " + std::to_string(member_count[c]) +
                           " equivalent states:";
      std::size_t listed = 0;
      for (StateId i = 0; i < machine.state_count() && listed < 12; ++i) {
        if (cls[i] == c) {
          merged += ' ' + machine.state(i).name;
          ++listed;
        }
      }
      if (member_count[c] > listed) merged += " ...";
      s.annotations.push_back(std::move(merged));
    }
    s.transitions = r.transitions;
    for (Transition& t : s.transitions) {
      t.target = class_to_output[cls[t.target]];
    }
    states[out] = std::move(s);
  }

  const StateId start = class_to_output[cls[machine.start()]];
  StateId finish = kNoState;
  for (StateId i = 0; i < states.size(); ++i) {
    if (states[i].is_final) {
      finish = i;
      break;
    }
  }

  if (state_class != nullptr) {
    state_class->resize(machine.state_count());
    for (StateId i = 0; i < machine.state_count(); ++i) {
      (*state_class)[i] = class_to_output[cls[i]];
    }
  }
  return StateMachine(machine.messages(), std::move(states), start, finish);
}

}  // namespace

StateMachine minimize(const StateMachine& machine,
                      std::vector<StateId>* state_class,
                      const ThreadPool* pool) {
  // Moore-style partition refinement: start from the coarsest partition
  // (everything equivalent) and split classes whose members disagree on
  // finality, applicable messages, actions, or the class of a destination,
  // until stable. The fixpoint is the coarsest behavioural equivalence —
  // the paper's "combine any sets of equivalent states" run to completion.
  // (A greedy bottom-up merge of identical-successor states, as the paper's
  // wording might also suggest, can fail to combine bisimilar states on
  // cycles; refinement cannot. merge_once() exposes one greedy round for
  // the ablation bench.)
  //
  // The rebuilt machine depends only on the final partition — classes are
  // renumbered by lowest representative — and the refinement fixpoint is
  // unique, so the result is identical whichever pool (or none) is used.
  if (machine.state_count() == 0) return machine;
  SignatureTable table = build_signature_table(machine);
  std::vector<std::uint32_t> cls(machine.state_count(), 0);
  std::uint32_t count = 1;
  for (;;) {
    const std::uint32_t new_count =
        coalesce(machine, table, cls, /*refine=*/true, pool);
    if (new_count == count) break;
    count = new_count;
  }
  return rebuild(machine, cls, count, state_class);
}

StateMachine merge_once(const StateMachine& machine,
                        std::vector<StateId>* state_class) {
  if (machine.state_count() == 0) return machine;
  SignatureTable table = build_signature_table(machine);
  std::vector<std::uint32_t> cls(machine.state_count());
  for (StateId i = 0; i < machine.state_count(); ++i) cls[i] = i;
  const std::uint32_t count =
      coalesce(machine, table, cls, /*refine=*/false, /*pool=*/nullptr);
  return rebuild(machine, cls, count, state_class);
}

}  // namespace asa_repro::fsm
