// Runtime conformance checking of deployments against a generated machine.
//
// The paper's motivation for the FSM formulation is "increased confidence
// in correctness"; a generated machine also makes that confidence checkable
// at run time: any implementation claiming to realise the protocol (a
// hand-written port, a dynamically loaded shared object, a peer whose logs
// were captured in production) can be validated by replaying its observed
// (message, actions) sequence against the machine. The checker tracks the
// unique state consistent with the observations and reports the first
// divergence.
#pragma once

#include <string>

#include "core/state_machine.hpp"

namespace asa_repro::fsm {

class ConformanceChecker {
 public:
  explicit ConformanceChecker(const StateMachine& machine)
      : machine_(&machine), state_(machine.start()) {}

  /// Feed one observation: message `m` was delivered and the implementation
  /// performed `actions` (possibly none). An inapplicable message must
  /// produce no actions (the deployed convention: ignore it).
  /// Returns false from the first non-conforming observation onward.
  bool observe(MessageId m, const ActionList& actions) {
    if (failed_) return false;
    ++steps_;
    const Transition* t = machine_->state(state_).transition(m);
    if (t == nullptr) {
      if (!actions.empty()) {
        fail(m, actions,
             "message is not applicable in state '" +
                 machine_->state(state_).name +
                 "' but actions were performed");
      }
      return !failed_;
    }
    if (t->actions != actions) {
      fail(m, actions,
           "actions differ from the machine's transition out of state '" +
               machine_->state(state_).name + "'");
      return false;
    }
    state_ = t->target;
    return true;
  }

  /// Feed an observation including the state name the implementation
  /// reports afterwards (stronger check, available for generated code).
  bool observe_with_state(MessageId m, const ActionList& actions,
                          std::string_view reported_state) {
    if (!observe(m, actions)) return false;
    if (machine_->state(state_).name != reported_state) {
      failed_ = true;
      error_ = "after step " + std::to_string(steps_) +
               ": implementation reports state '" +
               std::string(reported_state) + "' but the machine is in '" +
               machine_->state(state_).name + "'";
      return false;
    }
    return true;
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] StateId state() const { return state_; }
  [[nodiscard]] bool finished() const {
    return machine_->state(state_).is_final;
  }
  [[nodiscard]] std::size_t steps() const { return steps_; }

  void reset() {
    state_ = machine_->start();
    failed_ = false;
    error_.clear();
    steps_ = 0;
  }

 private:
  void fail(MessageId m, const ActionList& actions, std::string why) {
    failed_ = true;
    error_ = "step " + std::to_string(steps_) + ", message '" +
             machine_->messages()[m] + "' with actions [";
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (i > 0) error_ += ", ";
      error_ += actions[i];
    }
    error_ += "]: " + std::move(why);
  }

  const StateMachine* machine_;
  StateId state_;
  bool failed_ = false;
  std::string error_;
  std::size_t steps_ = 0;
};

}  // namespace asa_repro::fsm
