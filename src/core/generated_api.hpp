// Host interface for dynamically loaded generated machines.
//
// The paper (sections 4.2-4.3) discusses generating an implementation "on
// the fly" when a new parameter value is encountered: the generated source
// must be compiled, loaded and bound dynamically (the paper used the Java 6
// compiler API; here the counterpart is the system C++ compiler plus
// dlopen). GeneratedFsmApi is the stable ABI between the host application
// and a generated shared object: the host drives the machine through
// virtual calls and observes outgoing actions through a C-style callback,
// so host and generated code need share only this header.
#pragma once

#include <cstdint>

namespace asa_repro::fsm {

/// Abstract interface implemented by generated machines compiled in
/// api/sink mode (CodeGenOptions::implement_api).
class GeneratedFsmApi {
 public:
  /// Callback invoked for each outgoing action, in order.
  using ActionSink = void (*)(void* ctx, const char* action);

  virtual ~GeneratedFsmApi() = default;

  /// Deliver message `m` (index into the machine's message vocabulary).
  /// Inapplicable messages are ignored, as in the interpreter.
  virtual void receive(std::uint32_t m) = 0;

  /// Ordinal of the current state within the generated state enum.
  [[nodiscard]] virtual std::uint32_t state_ordinal() const = 0;

  /// Name of the current state (e.g. "T/2/F/0/F/F/F").
  [[nodiscard]] virtual const char* state_name() const = 0;

  /// True once the finish state has been reached.
  [[nodiscard]] virtual bool finished() const = 0;

  /// Return to the start state.
  virtual void reset() = 0;

  /// Install the action callback (nullptr to silence).
  virtual void set_action_sink(ActionSink sink, void* ctx) = 0;
};

/// Base class for machines generated in sink mode: routes emitted actions
/// to the installed callback. Generated handler code calls emit("vote") for
/// each action.
class DynamicFsmBase : public GeneratedFsmApi {
 public:
  void set_action_sink(ActionSink sink, void* ctx) override {
    sink_ = sink;
    ctx_ = ctx;
  }

 protected:
  void emit(const char* action) {
    if (sink_ != nullptr) sink_(ctx_, action);
  }

 private:
  ActionSink sink_ = nullptr;
  void* ctx_ = nullptr;
};

/// Name of the factory symbol a generated shared object exports when
/// CodeGenOptions::emit_factory is set:
///   extern "C" asa_repro::fsm::GeneratedFsmApi* <factory>();
inline constexpr const char* kDefaultFactoryName = "asa_create_fsm";

}  // namespace asa_repro::fsm
