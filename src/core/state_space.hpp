// State components and state spaces (paper Fig 20).
//
// An abstract model is configured with an ordered list of state components —
// booleans and bounded integers — whose cross product defines the space of
// possible states (paper section 3.4, "Generating possible states"). For the
// commit algorithm with replication factor r this is 2^5 * r^2 states.
//
// A StateVector holds one concrete value per component; the StateSpace maps
// vectors to dense mixed-radix indices and to the paper's textual state
// names (e.g. "T/2/F/0/F/F/F", Fig 14).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asa_repro::fsm {

/// One component of the state vector.
///
/// A boolean component has max_value == 1 and renders as T/F; an integer
/// component ranges over [0, max_value] and renders as a decimal.
struct StateComponent {
  std::string name;
  std::uint32_t max_value = 1;
  bool is_boolean = false;

  [[nodiscard]] std::uint32_t cardinality() const { return max_value + 1; }
};

/// Factory mirroring the paper's `new BooleanComponent("update_received")`.
[[nodiscard]] StateComponent boolean_component(std::string name);

/// Factory mirroring the paper's `new IntComponent("votes_received", max)`.
[[nodiscard]] StateComponent int_component(std::string name,
                                           std::uint32_t max_value);

/// Concrete value assignment, one entry per component, in component order.
using StateVector = std::vector<std::uint32_t>;

/// Dense index of a state within its space.
using StateIndex = std::uint64_t;

/// An ordered set of components defining a finite state space.
class StateSpace {
 public:
  StateSpace() = default;
  explicit StateSpace(std::vector<StateComponent> components);

  [[nodiscard]] const std::vector<StateComponent>& components() const {
    return components_;
  }

  /// Number of components.
  [[nodiscard]] std::size_t arity() const { return components_.size(); }

  /// Total number of states (product of component cardinalities).
  [[nodiscard]] StateIndex size() const { return size_; }

  /// Position of the named component, if present.
  [[nodiscard]] std::optional<std::size_t> index_of(
      std::string_view name) const;

  /// Mixed-radix encoding of a state vector. Precondition: in-range values.
  [[nodiscard]] StateIndex encode(const StateVector& v) const;

  /// Inverse of encode().
  [[nodiscard]] StateVector decode(StateIndex idx) const;

  /// Paper-style state name: components joined by `sep`, booleans as T/F.
  /// Fig 14 uses '/' ("T/2/F/0/F/F/F"); Fig 16 uses '-' ("T-2-F-0-F-F-F").
  [[nodiscard]] std::string name(const StateVector& v, char sep = '/') const;

  /// Parse a name produced by name(). Returns nullopt on malformed input.
  [[nodiscard]] std::optional<StateVector> parse_name(std::string_view name,
                                                      char sep = '/') const;

  /// True if every value is within its component's range.
  [[nodiscard]] bool in_range(const StateVector& v) const;

 private:
  std::vector<StateComponent> components_;
  std::vector<StateIndex> strides_;
  StateIndex size_ = 1;
};

}  // namespace asa_repro::fsm
