// Generation-policy support (paper section 4.2), generalised.
//
// The paper identifies a spectrum of generation times: once during
// development, at every execution, or whenever a new parameter value is
// encountered — the last amortised by "caching generated implementations to
// avoid the need for regeneration of versions that have been encountered
// previously". This cache implements that policy for any abstract model:
// machines are keyed by (model id, parameter, generation code version) and
// held in memory; when constructed with a directory they are additionally
// persisted as the diagram-interchange XML artefact (core/render), so a
// later process re-encountering the same family member reloads it in O(1)
// instead of regenerating.
//
// The code version participates in the key so that a change to the
// generation pipeline (model semantics, annotation text, minimization)
// invalidates every previously persisted machine: old files are simply
// never looked up again. Unreadable or corrupt cache files are treated as
// misses and overwritten with a freshly generated machine.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/state_machine.hpp"

namespace asa_repro::fsm {

/// Version of the generation pipeline baked into every cache key. Bump
/// whenever a code change alters generated machines (states, transitions,
/// annotations) so stale on-disk entries stop being served.
inline constexpr std::uint32_t kGenerationCodeVersion = 1;

/// Hit/miss counters, exposed for tests and benchmarks.
struct MachineCacheStats {
  std::size_t memory_hits = 0;
  std::size_t disk_hits = 0;
  std::size_t misses = 0;  // Generator invocations.
  /// Disk entries that parsed but failed the installed validator (e.g. the
  /// fsmcheck structural lints) and were regenerated. A nonzero count means
  /// a cache file was corrupted in a way the XML parser cannot see.
  std::size_t validation_rejects = 0;
};

class MachineCache {
 public:
  using Generator = std::function<StateMachine()>;

  /// Semantic acceptance test applied to machines loaded from disk, over
  /// and above XML well-formedness: returns a description of the first
  /// problem, or nullopt to accept. A rejected entry is treated exactly
  /// like a corrupt file — regenerated and overwritten. The check library
  /// provides a structural-lint validator (check::structural_validator);
  /// core cannot depend on it, so callers install it explicitly.
  using Validator = std::function<std::optional<std::string>(
      const StateMachine&)>;

  /// Memory-only cache (the paper's per-process regeneration policy).
  MachineCache() = default;

  /// Cache persisted under `directory` (created if absent). Entries written
  /// by one process are visible to later ones.
  explicit MachineCache(std::filesystem::path directory);

  /// The machine for (model_id, parameter), generating it via `generate` on
  /// first encounter. The returned reference is stable for the cache's
  /// lifetime. Lookup order: memory, then disk, then generation (which
  /// also persists the result when a directory is configured).
  const StateMachine& machine_for(std::string_view model_id,
                                  std::uint64_t parameter,
                                  const Generator& generate);

  /// Install (or clear, with nullptr) the disk-load validator.
  void set_validator(Validator validator) {
    validator_ = std::move(validator);
  }

  [[nodiscard]] bool contains(std::string_view model_id,
                              std::uint64_t parameter) const;
  [[nodiscard]] std::size_t size() const { return machines_.size(); }
  [[nodiscard]] const MachineCacheStats& stats() const { return stats_; }
  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }

  /// File name an entry persists to (exposed so tests can corrupt it).
  [[nodiscard]] static std::string file_name(std::string_view model_id,
                                             std::uint64_t parameter);

 private:
  [[nodiscard]] static std::string key(std::string_view model_id,
                                       std::uint64_t parameter);

  std::map<std::string, std::unique_ptr<StateMachine>> machines_;
  std::filesystem::path directory_;  // Empty = memory-only.
  Validator validator_;              // Applied to disk loads only.
  MachineCacheStats stats_;
};

}  // namespace asa_repro::fsm
