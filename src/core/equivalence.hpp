// Behavioural equivalence checks between generated machines.
//
// Used by tests and benches to prove that the generation pipeline preserves
// behaviour: the merged machine must be trace-equivalent to the pruned
// machine, and every rendered artefact (interpreter, generated source,
// EFSM) must be trace-equivalent to the machine it was rendered from.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/state_machine.hpp"

namespace asa_repro::fsm {

/// A counterexample distinguishing two machines: the message trace leading
/// to the divergence and a description of how they diverged.
struct Divergence {
  std::vector<MessageId> trace;
  std::string reason;
};

/// Check that `a` and `b` are trace-equivalent from their start states:
/// after any common message sequence, the same messages are applicable,
/// applicable messages produce identical action lists, and finality agrees.
/// Message vocabularies must match (by name, in order).
///
/// Returns nullopt when equivalent, otherwise a shortest-divergence witness
/// (BFS order).
///
/// With `jobs` != 1 the product-space search runs level-synchronously: each
/// BFS frontier is examined chunked on an internal thread pool
/// (core/parallel.hpp; 0 = hardware concurrency), then successors are
/// merged serially in discovery order. The visit order — and therefore the
/// returned witness — is identical to the serial search for any job count.
[[nodiscard]] std::optional<Divergence> find_divergence(
    const StateMachine& a, const StateMachine& b, unsigned jobs = 1);

/// Convenience wrapper.
[[nodiscard]] inline bool trace_equivalent(const StateMachine& a,
                                           const StateMachine& b,
                                           unsigned jobs = 1) {
  return !find_divergence(a, b, jobs).has_value();
}

/// A divergence found while sweeping a parameterised family: which family
/// member diverged, and the witness trace within that member.
struct FamilyDivergence {
  std::uint64_t parameter = 0;
  Divergence divergence;
};

/// Check trace equivalence between two machine-producing views of the same
/// family over every parameter in [lo, hi]: for each value p the machines
/// a(p) and b(p) must be trace-equivalent. Stops at the first diverging
/// member and returns its witness; nullopt when the whole family agrees.
/// Used to prove the section 5.3 EFSM bisimilar to every generated
/// concrete machine (fsmcheck group 4).
[[nodiscard]] std::optional<FamilyDivergence> find_family_divergence(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<StateMachine(std::uint64_t)>& a,
    const std::function<StateMachine(std::uint64_t)>& b, unsigned jobs = 1);

/// Render a witness trace using `machine`'s message names:
/// "update, vote, vote" ("<empty trace>" for a start-state divergence).
[[nodiscard]] std::string format_trace(const StateMachine& machine,
                                       const std::vector<MessageId>& trace);

}  // namespace asa_repro::fsm
