// SHA-1 message digest, implemented from scratch per RFC 3174.
//
// The ASA storage layer (the paper's substrate) derives PIDs — persistent
// identifiers for immutable data blocks — by hashing block contents with
// SHA-1 (paper section 2.1, reference [8]). This is a self-contained,
// dependency-free implementation with an incremental (init/update/final)
// interface plus one-shot helpers.
//
// SHA-1 is used here for content addressing and replica-key derivation, not
// for security against adversarial collision search; this mirrors the
// paper's usage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace asa_repro::crypto {

/// A 160-bit SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update(bytes1);
///   h.update(bytes2);
///   Sha1Digest d = h.finalize();
///
/// After finalize() the hasher must be reset() before reuse.
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Re-initialise to the RFC 3174 initial state.
  void reset();

  /// Absorb a span of bytes.
  void update(std::span<const std::uint8_t> data);

  /// Absorb a string's bytes (convenience for text payloads).
  void update(std::string_view text);

  /// Complete the hash (appends padding and length) and return the digest.
  /// The hasher is left in a finalized state; call reset() to reuse.
  [[nodiscard]] Sha1Digest finalize();

  /// One-shot convenience.
  [[nodiscard]] static Sha1Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Sha1Digest hash(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

}  // namespace asa_repro::crypto
