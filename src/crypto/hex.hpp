// Hex encoding/decoding for digests and identifiers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace asa_repro::crypto {

/// Lower-case hex encoding of a byte span.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decode a hex string (case-insensitive). Returns nullopt on odd length or
/// non-hex characters.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> from_hex(
    std::string_view hex);

}  // namespace asa_repro::crypto
