#include "crypto/sha1.hpp"

#include <cassert>
#include <cstring>

namespace asa_repro::crypto {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, unsigned n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
  finalized_ = false;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (std::uint32_t{block[t * 4]} << 24) |
           (std::uint32_t{block[t * 4 + 1]} << 16) |
           (std::uint32_t{block[t * 4 + 2]} << 8) |
           std::uint32_t{block[t * 4 + 3]};
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];

  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + w[t] + k;
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  assert(!finalized_ && "Sha1::update after finalize; call reset() first");
  total_bits_ += std::uint64_t{data.size()} * 8;

  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1Digest Sha1::finalize() {
  assert(!finalized_ && "Sha1::finalize called twice; call reset() first");
  const std::uint64_t bits = total_bits_;

  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian length.
  const std::uint8_t one = 0x80;
  update(std::span<const std::uint8_t>(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> len{};
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len.data(), len.size()));
  assert(buffer_len_ == 0);

  Sha1Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  finalized_ = true;
  return out;
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finalize();
}

Sha1Digest Sha1::hash(std::string_view text) {
  Sha1 h;
  h.update(text);
  return h.finalize();
}

}  // namespace asa_repro::crypto
