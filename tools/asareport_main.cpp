// asareport — render the observability artifacts as a human summary.
//
// Consumes any of the repo's versioned observability documents and
// dispatches on the schema field:
//
//   asa-metrics/1     percentile tables, per-node protocol breakdown and
//                     (with --trace) the top-k slowest commit instances
//   asa-findings/1    fsmcheck findings listing
//   asa-span/1        commit-path spans; --critical-path attributes p50/p99
//                     commit latency to protocol phases (submit, retry,
//                     route, vote-collect, quorum, ack)
//   asa-postmortem/1  post-mortem bundle: violations, shrunk fault plan,
//                     per-node flight-recorder tails, embedded metrics and
//                     span documents
//
// With --validate it only checks the document's structure and exits
// non-zero on malformed or unknown-schema documents (CI gates on this).
// With --bench-compare it gates a fresh bench_execution --json run against
// a committed baseline (ns/msg per impl, +/- tolerance).
//
//   asareport --metrics run.json --trace run.trace
//   asareport --spans run.spans.json --critical-path
//   asareport --metrics postmortem-seed7.json
//   asareport --metrics anything.json --validate
//   asareport --bench-compare BENCH_execution.json --metrics new.json
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

using namespace asa_repro;

namespace {

void usage() {
  std::cout <<
      "usage: asareport [--metrics FILE] [--spans FILE] [options]\n"
      "  --metrics FILE   asa-metrics/1, asa-findings/1, asa-span/1 or\n"
      "                   asa-postmortem/1 JSON document\n"
      "  --spans FILE     asa-span/1 JSON document (from --spans-out)\n"
      "  --trace FILE     asa-trace/1 JSONL event stream (optional,\n"
      "                   metrics rendering only)\n"
      "  --top K          slowest commit instances to list (default 10)\n"
      "  --critical-path  attribute commit latency to protocol phases\n"
      "                   (needs a span document)\n"
      "  --bench-compare BASELINE\n"
      "                   gate --metrics (a fresh bench --json run) against\n"
      "                   the BASELINE metrics document: ns/msg per impl\n"
      "                   must stay within the tolerance\n"
      "  --tolerance T    allowed relative ns/msg drift (default 0.20)\n"
      "  --validate       validate the document(s) and exit; non-zero on\n"
      "                   malformed or unknown-schema input\n";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Load + parse + structurally validate one document. Returns nullopt
/// (with a message on stderr) when anything is wrong.
std::optional<obs::JsonValue> load_document(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text.has_value()) {
    std::cerr << "asareport: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::optional<obs::JsonValue> doc = obs::parse_json(*text);
  if (!doc.has_value()) {
    std::cerr << "asareport: " << path << " is not valid JSON\n";
    return std::nullopt;
  }
  if (const std::optional<std::string> error =
          obs::validate_document_json(*doc);
      error.has_value()) {
    std::cerr << "asareport: " << path << ": " << *error << "\n";
    return std::nullopt;
  }
  return doc;
}

std::string schema_of(const obs::JsonValue& doc) {
  const obs::JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->is_string() ? schema->as_string()
                                                  : std::string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  std::string spans_path;
  std::string bench_baseline_path;
  double tolerance = 0.20;
  obs::ReportOptions options;
  bool validate_only = false;
  bool critical_path = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    try {
      if (arg == "-h" || arg == "--help") {
        usage();
        return 0;
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--spans") {
        spans_path = next();
      } else if (arg == "--bench-compare") {
        bench_baseline_path = next();
      } else if (arg == "--tolerance") {
        tolerance = std::stod(next());
      } else if (arg == "--top") {
        options.top_k = std::stoul(next());
      } else if (arg == "--critical-path") {
        critical_path = true;
      } else if (arg == "--validate") {
        validate_only = true;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  if (metrics_path.empty() && spans_path.empty()) {
    usage();
    return 2;
  }

  // Bench gate: baseline vs the fresh run in --metrics.
  if (!bench_baseline_path.empty()) {
    if (metrics_path.empty()) {
      std::cerr << "asareport: --bench-compare needs --metrics (the fresh "
                   "bench --json run)\n";
      return 2;
    }
    const std::optional<obs::JsonValue> baseline =
        load_document(bench_baseline_path);
    const std::optional<obs::JsonValue> current = load_document(metrics_path);
    if (!baseline.has_value() || !current.has_value()) return 1;
    const obs::BenchCompareResult result =
        obs::compare_bench_metrics(*baseline, *current, tolerance);
    std::cout << result.report;
    return result.ok ? 0 : 1;
  }

  std::optional<obs::JsonValue> metrics;
  if (!metrics_path.empty()) {
    metrics = load_document(metrics_path);
    if (!metrics.has_value()) return 1;
  }
  std::optional<obs::JsonValue> spans;
  if (!spans_path.empty()) {
    spans = load_document(spans_path);
    if (!spans.has_value()) return 1;
    if (const std::string schema = schema_of(*spans);
        schema != "asa-span/1") {
      std::cerr << "asareport: " << spans_path << ": expected asa-span/1, got "
                << (schema.empty() ? "no schema" : schema) << "\n";
      return 1;
    }
  }

  if (validate_only) {
    if (metrics.has_value()) {
      std::cout << metrics_path << ": valid " << schema_of(*metrics)
                << " document\n";
    }
    if (spans.has_value()) {
      std::cout << spans_path << ": valid asa-span/1 document\n";
    }
    return 0;
  }

  if (metrics.has_value()) {
    const std::string schema = schema_of(*metrics);
    if (schema == "asa-findings/1") {
      std::cout << obs::render_findings(*metrics);
    } else if (schema == "asa-postmortem/1") {
      std::cout << obs::render_postmortem(*metrics);
    } else if (schema == "asa-span/1") {
      std::cout << obs::render_critical_path(*metrics);
    } else {
      std::vector<obs::ReportTraceEvent> trace;
      if (!trace_path.empty()) {
        const std::optional<std::string> trace_text = read_file(trace_path);
        if (!trace_text.has_value()) {
          std::cerr << "asareport: cannot open " << trace_path << "\n";
          return 2;
        }
        std::optional<std::vector<obs::ReportTraceEvent>> parsed =
            obs::parse_trace_jsonl(*trace_text);
        if (!parsed.has_value()) {
          std::cerr << "asareport: " << trace_path
                    << " is not a valid asa-trace/1 stream\n";
          return 1;
        }
        trace = std::move(*parsed);
      }
      std::cout << obs::render_report(*metrics, trace, options);
    }
  }
  if (spans.has_value()) {
    // --critical-path is the only span renderer; a bare --spans gets it too.
    (void)critical_path;
    std::cout << obs::render_critical_path(*spans);
  }
  return 0;
}
