// asareport — render the observability artifacts as a human summary.
//
// Consumes the asa-metrics/1 JSON document written by asasim/asachaos
// --metrics-out (and the bench --json files, which share the schema) plus,
// optionally, the asa-trace/1 JSONL stream from --trace-out, and prints
// percentile tables for every histogram, a per-node protocol breakdown,
// and the top-k slowest commit instances reconstructed from the causal
// trace. asa-findings/1 documents (fsmcheck --json) are recognised by
// their schema field and rendered as a findings listing instead. With
// --validate it only checks the document's structure (CI's metrics and
// fsmcheck jobs gate on this).
//
//   asareport --metrics run.json --trace run.trace
//   asareport --metrics run.json --validate
//   asareport --metrics findings.json --validate
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

using namespace asa_repro;

namespace {

void usage() {
  std::cout <<
      "usage: asareport --metrics FILE [options]\n"
      "  --metrics FILE   asa-metrics/1 or asa-findings/1 JSON document\n"
      "                   (required)\n"
      "  --trace FILE     asa-trace/1 JSONL event stream (optional)\n"
      "  --top K          slowest commit instances to list (default 10)\n"
      "  --validate       validate the document and exit\n";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  obs::ReportOptions options;
  bool validate_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    try {
      if (arg == "-h" || arg == "--help") {
        usage();
        return 0;
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--top") {
        options.top_k = std::stoul(next());
      } else if (arg == "--validate") {
        validate_only = true;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  if (metrics_path.empty()) {
    usage();
    return 2;
  }

  const std::optional<std::string> metrics_text = read_file(metrics_path);
  if (!metrics_text.has_value()) {
    std::cerr << "asareport: cannot open " << metrics_path << "\n";
    return 2;
  }
  const std::optional<obs::JsonValue> metrics =
      obs::parse_json(*metrics_text);
  if (!metrics.has_value()) {
    std::cerr << "asareport: " << metrics_path << " is not valid JSON\n";
    return 1;
  }
  if (const std::optional<std::string> error =
          obs::validate_document_json(*metrics);
      error.has_value()) {
    std::cerr << "asareport: " << metrics_path << ": " << *error << "\n";
    return 1;
  }
  const obs::JsonValue* schema = metrics->find("schema");
  const bool is_findings =
      schema != nullptr && schema->is_string() &&
      schema->as_string() == "asa-findings/1";
  if (validate_only) {
    std::cout << metrics_path << ": valid "
              << (is_findings ? "asa-findings/1" : "asa-metrics/1")
              << " document\n";
    return 0;
  }
  if (is_findings) {
    std::cout << obs::render_findings(*metrics);
    return 0;
  }

  std::vector<obs::ReportTraceEvent> trace;
  if (!trace_path.empty()) {
    const std::optional<std::string> trace_text = read_file(trace_path);
    if (!trace_text.has_value()) {
      std::cerr << "asareport: cannot open " << trace_path << "\n";
      return 2;
    }
    std::optional<std::vector<obs::ReportTraceEvent>> parsed =
        obs::parse_trace_jsonl(*trace_text);
    if (!parsed.has_value()) {
      std::cerr << "asareport: " << trace_path
                << " is not a valid asa-trace/1 stream\n";
      return 1;
    }
    trace = std::move(*parsed);
  }

  std::cout << obs::render_report(*metrics, trace, options);
  return 0;
}
