// fsmcheck — static verification of the generated FSM family and EFSM.
//
// Runs the six analysis groups of src/check over the commit protocol:
// structural lints and rendered-artefact round-trips on every generated
// machine in the replication-factor range, exhaustive protocol-property
// traversal (vote/commit emitted at most once and only at threshold,
// finality exactly at f+1 commits, termination), bounded-enumeration guard
// analysis of the hand-written EFSM, family conformance (the EFSM
// expanded at each r trace-equivalent to the generated machine; the
// checked-in generated source byte-identical to regeneration),
// compiled-backend conformance (the dense dispatch table's layout,
// decoder, and trace equivalence to the interpreter across the family),
// and — under --protocol — explicit-state model checking of the COMPOSED
// protocol: r peers, the endpoint abstraction and a lossy reordering
// network, with counterexamples exported as asa-replay/1 plans.
//
// Exit code 0 = no findings, 1 = findings (or a failed mutation
// self-test), 2 = usage error. CI runs all modes and fails on any.
//
// Examples:
//   fsmcheck --family 4..16 --efsm
//   fsmcheck -r 4 --json findings.json
//   fsmcheck --mutate
//   fsmcheck --protocol                       (composition, r=4..8)
//   fsmcheck --protocol -r 4 --mutation comp.dup_vote --replay-out plan.txt
//   fsmcheck --protocol --mutate
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/composition.hpp"
#include "check/findings.hpp"
#include "check/mutate.hpp"
#include "commit/commit_model.hpp"
#include "core/abstract_model.hpp"
#include "core/render/dot_renderer.hpp"
#include "core/render/mermaid_renderer.hpp"

using namespace asa_repro;

namespace {

void usage() {
  std::cout <<
      "usage: fsmcheck [options]\n"
      "  -r N             check a single replication factor (default 4..16;\n"
      "                   4..8 under --protocol)\n"
      "  --family A..B    check every replication factor in [A, B]\n"
      "  --efsm           include EFSM guard analysis and family\n"
      "                   conformance (default on; --no-efsm disables)\n"
      "  --no-efsm        structural and property checks only\n"
      "  --no-table       skip compiled-backend conformance (table layout,\n"
      "                   event decoder, compiled-vs-interpreted trace\n"
      "                   equivalence; default on)\n"
      "  --no-artefact    skip the checked-in generated-source comparison\n"
      "  --generated FILE checked-in artefact to compare (default:\n"
      "                   src/commit/generated/commit_fsm_r4.hpp)\n"
      "  --json FILE      write findings as an asa-findings/1 document\n"
      "  --dot FILE       render the first flagged machine as DOT with the\n"
      "                   offending states/transitions highlighted\n"
      "  --mermaid FILE   same, as a Mermaid state diagram\n"
      "  --mutate         run the mutation self-test instead: seed known\n"
      "                   defects and require 100% detection (with\n"
      "                   --protocol: the composition-level catalogue)\n"
      "  --jobs N         generation/equivalence lanes (0 = hardware)\n"
      "protocol composition (analysis group 6):\n"
      "  --protocol       model-check the COMPOSED protocol: peers +\n"
      "                   endpoint + lossy reordering network\n"
      "  --net-bound N    prune states with more than N in-flight messages\n"
      "                   (0 = unbounded, the sound default)\n"
      "  --requests N     concurrent client updates (default 1)\n"
      "  --attempts N     endpoint attempts per request (default 1)\n"
      "  --drops N        message-drop budget (default 1)\n"
      "  --dups N         duplicate-delivery budget (default 1; only spent\n"
      "                   under comp.dup_vote, where duplicates matter)\n"
      "  --crashes N      fail-stop crash budget (capped at f; default 1)\n"
      "  --mutation NAME  plant one composition mutation (see --protocol\n"
      "                   --mutate for the catalogue)\n"
      "  --replay-out FILE  export the preferred counterexample as an\n"
      "                   asa-replay/1 plan for `asasim --replay`\n";
}

/// Strict base-10 uint32 parse: rejects empty strings, signs, leading
/// whitespace, trailing garbage and values that do not fit. (std::stoul
/// accepts "4x" and silently wraps "-1" — both have bitten --family.)
std::optional<std::uint32_t> parse_u32(const std::string& text) {
  if (text.empty() || text.size() > 10) return std::nullopt;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (value > 0xFFFF'FFFFull) return std::nullopt;
  return static_cast<std::uint32_t>(value);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fsmcheck: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

/// Render the machine named by the first finding that carries diagram
/// hooks, with its flagged states/transitions emphasised.
void render_flagged(const check::Findings& findings,
                    const check::CheckOptions& options,
                    const std::string& dot_path,
                    const std::string& mermaid_path) {
  const check::Finding* flagged = nullptr;
  for (const check::Finding& f : findings) {
    if (!f.states.empty() || !f.transitions.empty()) {
      flagged = &f;
      break;
    }
  }
  if (flagged == nullptr) {
    std::cerr << "fsmcheck: no finding carries diagram locations; "
                 "nothing to render\n";
    return;
  }
  // Findings label machines "commit_rN"; re-generate that member.
  const std::string& label = flagged->machine;
  const std::size_t pos = label.rfind('r');
  std::uint32_t r = options.r_lo;
  if (pos != std::string::npos) {
    if (const auto parsed = parse_u32(label.substr(pos + 1))) r = *parsed;
  }
  commit::CommitModel model(r);
  fsm::GenerationOptions gen_options;
  gen_options.jobs = options.jobs;
  const fsm::StateMachine machine = model.generate_state_machine(gen_options);
  if (!dot_path.empty()) {
    fsm::DotOptions dot;
    dot.graph_name = label;
    dot.highlight_states = flagged->states;
    dot.highlight_transitions = flagged->transitions;
    if (write_file(dot_path, fsm::DotRenderer(dot).render(machine))) {
      std::cout << "wrote " << dot_path << " highlighting '"
                << flagged->check << "'\n";
    }
  }
  if (!mermaid_path.empty()) {
    fsm::MermaidOptions mermaid;
    mermaid.highlight_states = flagged->states;
    mermaid.highlight_transitions = flagged->transitions;
    if (write_file(mermaid_path,
                   fsm::MermaidRenderer(mermaid).render(machine))) {
      std::cout << "wrote " << mermaid_path << " highlighting '"
                << flagged->check << "'\n";
    }
  }
}

void print_mutation_report(const check::MutationReport& report) {
  for (const check::MutationOutcome& o : report.outcomes) {
    std::cout << (o.detected ? "caught " : "MISSED ") << o.name << ": "
              << o.description << "\n";
    if (o.detected) {
      std::cout << "    by " << o.finding << "\n";
    }
  }
  std::cout << report.detected() << "/" << report.outcomes.size()
            << " mutations detected\n";
}

int run_mutate(std::uint32_t r, unsigned jobs) {
  const check::MutationReport report = check::run_mutation_self_test(r, jobs);
  print_mutation_report(report);
  if (!report.all_detected()) {
    std::cerr << "fsmcheck: mutation self-test FAILED — the checks above "
                 "did not flag a known-broken model\n";
    return 1;
  }
  return 0;
}

int run_protocol(check::CompositionOptions base, std::uint32_t r_lo,
                 std::uint32_t r_hi, bool mutate,
                 const std::string& json_path,
                 const std::string& replay_path) {
  if (mutate) {
    base.r = r_lo;
    const check::MutationReport report =
        check::run_composition_mutation_self_test(base);
    print_mutation_report(report);
    if (!report.all_detected()) {
      std::cerr << "fsmcheck: composition mutation self-test FAILED — a "
                   "known protocol bug survived the composition checks\n";
      return 1;
    }
    return 0;
  }

  check::Findings findings;
  std::vector<check::GroupTiming> timings;
  std::size_t checks_run = 0;
  std::optional<commit::ReplayPlan> replay;
  for (std::uint32_t r = r_lo; r <= r_hi; ++r) {
    check::CompositionOptions options = base;
    options.r = r;
    const auto start = std::chrono::steady_clock::now();
    const check::CompositionResult result = check::check_composition(options);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    checks_run += result.checks_run;
    std::cout << "r=" << r << ": " << result.stats.states
              << " canonical states, " << result.stats.transitions
              << " transitions, " << result.stats.absorbed
              << " absorbed, "
              << (result.stats.complete ? "complete" : "TRUNCATED") << " ("
              << elapsed.count() << " ms)\n";
    for (const check::Finding& f : result.findings) {
      std::cout << check::to_string(f) << "\n";
    }
    if (!replay.has_value()) {
      const std::size_t best = check::preferred_replay(result);
      if (best < result.plans.size()) replay = result.plans[best];
    }
    findings.insert(findings.end(), result.findings.begin(),
                    result.findings.end());
    check::GroupTiming timing;
    timing.group = "composition_r" + std::to_string(r);
    timing.ms = static_cast<std::uint64_t>(elapsed.count());
    timings.push_back(std::move(timing));
  }
  std::cout << checks_run << " composition checks over r=" << r_lo << ".."
            << r_hi << ": " << findings.size() << " finding(s)\n";

  if (!replay_path.empty()) {
    if (replay.has_value()) {
      if (!write_file(replay_path, replay->serialize())) return 2;
      std::cout << "wrote " << replay_path << " (" << replay->check << ", "
                << replay->schedule.size() << " steps)\n";
    } else {
      std::cout << "no counterexample to export to " << replay_path << "\n";
    }
  }
  if (!json_path.empty()) {
    const obs::Meta meta = {
        {"tool", "fsmcheck"},
        {"model", "commit"},
        {"mode", "protocol"},
        {"family", std::to_string(r_lo) + ".." + std::to_string(r_hi)},
        {"mutation", base.mutation.empty() ? "none" : base.mutation},
    };
    if (!write_file(json_path, check::write_findings_json(
                                   findings, meta, checks_run, timings))) {
      return 2;
    }
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  check::CheckOptions options;
#ifdef ASA_DEFAULT_ARTIFACT
  options.artifact_path = ASA_DEFAULT_ARTIFACT;
#endif
  check::CompositionOptions comp;
  std::string json_path;
  std::string dot_path;
  std::string mermaid_path;
  std::string replay_path;
  bool mutate = false;
  bool single_r = false;
  bool family_given = false;
  bool protocol = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    // Strict numeric option parse: fail loudly on "4x", "-1", "" etc.
    const auto next_u32 = [&]() -> std::optional<std::uint32_t> {
      const std::string value = next();
      const auto parsed = parse_u32(value);
      if (!parsed.has_value()) {
        std::cerr << "fsmcheck: " << arg
                  << " expects an unsigned integer, got '" << value << "'\n";
      }
      return parsed;
    };
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (arg == "-r") {
      const auto r = next_u32();
      if (!r.has_value()) return 2;
      options.r_lo = options.r_hi = *r;
      single_r = true;
    } else if (arg == "--family") {
      const std::string range = next();
      const std::size_t dots = range.find("..");
      const auto lo =
          dots == std::string::npos
              ? std::nullopt
              : parse_u32(range.substr(0, dots));
      const auto hi =
          dots == std::string::npos
              ? std::nullopt
              : parse_u32(range.substr(dots + 2));
      if (!lo.has_value() || !hi.has_value()) {
        std::cerr << "fsmcheck: --family expects A..B with unsigned "
                     "integers A <= B, got '"
                  << range << "'\n";
        return 2;
      }
      options.r_lo = *lo;
      options.r_hi = *hi;
      family_given = true;
    } else if (arg == "--efsm") {
      options.efsm = true;
    } else if (arg == "--no-efsm") {
      options.efsm = false;
    } else if (arg == "--no-table") {
      options.table_backend = false;
    } else if (arg == "--no-artefact") {
      options.artifact_path.clear();
    } else if (arg == "--generated") {
      options.artifact_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--mermaid") {
      mermaid_path = next();
    } else if (arg == "--mutate") {
      mutate = true;
    } else if (arg == "--jobs") {
      const auto jobs = next_u32();
      if (!jobs.has_value()) return 2;
      options.jobs = *jobs;
    } else if (arg == "--protocol") {
      protocol = true;
    } else if (arg == "--net-bound") {
      const auto bound = next_u32();
      if (!bound.has_value()) return 2;
      comp.net_bound = *bound;
    } else if (arg == "--requests") {
      const auto requests = next_u32();
      if (!requests.has_value()) return 2;
      comp.requests = *requests;
    } else if (arg == "--attempts") {
      const auto attempts = next_u32();
      if (!attempts.has_value()) return 2;
      comp.attempts = *attempts;
    } else if (arg == "--drops") {
      const auto drops = next_u32();
      if (!drops.has_value()) return 2;
      comp.drops = *drops;
    } else if (arg == "--dups") {
      const auto dups = next_u32();
      if (!dups.has_value()) return 2;
      comp.dups = *dups;
    } else if (arg == "--crashes") {
      const auto crashes = next_u32();
      if (!crashes.has_value()) return 2;
      comp.crashes = *crashes;
    } else if (arg == "--mutation") {
      comp.mutation = next();
    } else if (arg == "--replay-out") {
      replay_path = next();
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (protocol && !single_r && !family_given) {
    // The composition state space grows much faster than the per-machine
    // checks'; default to the CI gate's r range.
    options.r_lo = 4;
    options.r_hi = 8;
  }
  if (options.r_lo < 2 || options.r_lo > options.r_hi) {
    std::cerr << "fsmcheck: bad replication range " << options.r_lo << ".."
              << options.r_hi << "\n";
    return 2;
  }
  if (!protocol &&
      (comp.net_bound != 0 || !comp.mutation.empty() ||
       !replay_path.empty())) {
    std::cerr << "fsmcheck: --net-bound/--mutation/--replay-out require "
                 "--protocol\n";
    return 2;
  }

  if (protocol) {
    try {
      return run_protocol(comp, options.r_lo, options.r_hi, mutate,
                          json_path, replay_path);
    } catch (const std::exception& error) {
      std::cerr << "fsmcheck: " << error.what() << "\n";
      return 2;
    }
  }

  if (mutate) return run_mutate(single_r ? options.r_lo : 4, options.jobs);

  // The checked-in artefact is the r=4 machine: comparing it only makes
  // sense when r=4 is part of the sweep.
  if (single_r && options.r_lo != 4) options.artifact_path.clear();

  const check::CheckRun run = check::run_commit_checks(options);
  for (const check::Finding& f : run.findings) {
    std::cout << check::to_string(f) << "\n";
  }
  std::cout << run.checks_run << " checks over r=" << options.r_lo << ".."
            << options.r_hi << ": " << run.findings.size() << " finding(s)\n";

  if (!json_path.empty()) {
    const obs::Meta meta = {
        {"tool", "fsmcheck"},
        {"model", "commit"},
        {"family",
         std::to_string(options.r_lo) + ".." + std::to_string(options.r_hi)},
        {"efsm", options.efsm ? "on" : "off"},
        {"table", options.table_backend ? "on" : "off"},
    };
    if (!write_file(json_path,
                    check::write_findings_json(run.findings, meta,
                                               run.checks_run,
                                               run.timings))) {
      return 2;
    }
  }
  if (!dot_path.empty() || !mermaid_path.empty()) {
    render_flagged(run.findings, options, dot_path, mermaid_path);
  }
  return run.findings.empty() ? 0 : 1;
}
