// fsmcheck — static verification of the generated FSM family and EFSM.
//
// Runs the five analysis groups of src/check over the commit protocol:
// structural lints and rendered-artefact round-trips on every generated
// machine in the replication-factor range, exhaustive protocol-property
// traversal (vote/commit emitted at most once and only at threshold,
// finality exactly at f+1 commits, termination), bounded-enumeration guard
// analysis of the hand-written EFSM, family conformance (the EFSM
// expanded at each r trace-equivalent to the generated machine; the
// checked-in generated source byte-identical to regeneration), and
// compiled-backend conformance (the dense dispatch table's layout,
// decoder, and trace equivalence to the interpreter across the family).
//
// Exit code 0 = no findings, 1 = findings (or a failed mutation
// self-test), 2 = usage error. CI runs both modes and fails on either.
//
// Examples:
//   fsmcheck --family 4..16 --efsm
//   fsmcheck -r 4 --json findings.json
//   fsmcheck --mutate
//   fsmcheck -r 4 --dot flagged.dot --mermaid flagged.md
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "check/check.hpp"
#include "check/findings.hpp"
#include "check/mutate.hpp"
#include "commit/commit_model.hpp"
#include "core/abstract_model.hpp"
#include "core/render/dot_renderer.hpp"
#include "core/render/mermaid_renderer.hpp"

using namespace asa_repro;

namespace {

void usage() {
  std::cout <<
      "usage: fsmcheck [options]\n"
      "  -r N             check a single replication factor (default 4..16)\n"
      "  --family A..B    check every replication factor in [A, B]\n"
      "  --efsm           include EFSM guard analysis and family\n"
      "                   conformance (default on; --no-efsm disables)\n"
      "  --no-efsm        structural and property checks only\n"
      "  --no-table       skip compiled-backend conformance (table layout,\n"
      "                   event decoder, compiled-vs-interpreted trace\n"
      "                   equivalence; default on)\n"
      "  --no-artefact    skip the checked-in generated-source comparison\n"
      "  --generated FILE checked-in artefact to compare (default:\n"
      "                   src/commit/generated/commit_fsm_r4.hpp)\n"
      "  --json FILE      write findings as an asa-findings/1 document\n"
      "  --dot FILE       render the first flagged machine as DOT with the\n"
      "                   offending states/transitions highlighted\n"
      "  --mermaid FILE   same, as a Mermaid state diagram\n"
      "  --mutate         run the mutation self-test instead: seed known\n"
      "                   defects and require 100% detection\n"
      "  --jobs N         generation/equivalence lanes (0 = hardware)\n";
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fsmcheck: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

/// Render the machine named by the first finding that carries diagram
/// hooks, with its flagged states/transitions emphasised.
void render_flagged(const check::Findings& findings,
                    const check::CheckOptions& options,
                    const std::string& dot_path,
                    const std::string& mermaid_path) {
  const check::Finding* flagged = nullptr;
  for (const check::Finding& f : findings) {
    if (!f.states.empty() || !f.transitions.empty()) {
      flagged = &f;
      break;
    }
  }
  if (flagged == nullptr) {
    std::cerr << "fsmcheck: no finding carries diagram locations; "
                 "nothing to render\n";
    return;
  }
  // Findings label machines "commit_rN"; re-generate that member.
  const std::string& label = flagged->machine;
  const std::size_t pos = label.rfind('r');
  std::uint32_t r = options.r_lo;
  if (pos != std::string::npos) {
    try {
      r = static_cast<std::uint32_t>(std::stoul(label.substr(pos + 1)));
    } catch (const std::exception&) {
    }
  }
  commit::CommitModel model(r);
  fsm::GenerationOptions gen_options;
  gen_options.jobs = options.jobs;
  const fsm::StateMachine machine = model.generate_state_machine(gen_options);
  if (!dot_path.empty()) {
    fsm::DotOptions dot;
    dot.graph_name = label;
    dot.highlight_states = flagged->states;
    dot.highlight_transitions = flagged->transitions;
    if (write_file(dot_path, fsm::DotRenderer(dot).render(machine))) {
      std::cout << "wrote " << dot_path << " highlighting '"
                << flagged->check << "'\n";
    }
  }
  if (!mermaid_path.empty()) {
    fsm::MermaidOptions mermaid;
    mermaid.highlight_states = flagged->states;
    mermaid.highlight_transitions = flagged->transitions;
    if (write_file(mermaid_path,
                   fsm::MermaidRenderer(mermaid).render(machine))) {
      std::cout << "wrote " << mermaid_path << " highlighting '"
                << flagged->check << "'\n";
    }
  }
}

int run_mutate(std::uint32_t r, unsigned jobs) {
  const check::MutationReport report = check::run_mutation_self_test(r, jobs);
  for (const check::MutationOutcome& o : report.outcomes) {
    std::cout << (o.detected ? "caught " : "MISSED ") << o.name << ": "
              << o.description << "\n";
    if (o.detected) {
      std::cout << "    by " << o.finding << "\n";
    }
  }
  std::cout << report.detected() << "/" << report.outcomes.size()
            << " mutations detected\n";
  if (!report.all_detected()) {
    std::cerr << "fsmcheck: mutation self-test FAILED — the checks above "
                 "did not flag a known-broken model\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  check::CheckOptions options;
#ifdef ASA_DEFAULT_ARTIFACT
  options.artifact_path = ASA_DEFAULT_ARTIFACT;
#endif
  std::string json_path;
  std::string dot_path;
  std::string mermaid_path;
  bool mutate = false;
  bool single_r = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    try {
      if (arg == "-h" || arg == "--help") {
        usage();
        return 0;
      } else if (arg == "-r") {
        options.r_lo = options.r_hi =
            static_cast<std::uint32_t>(std::stoul(next()));
        single_r = true;
      } else if (arg == "--family") {
        const std::string range = next();
        const std::size_t dots = range.find("..");
        if (dots == std::string::npos) {
          std::cerr << "fsmcheck: --family expects A..B\n";
          return 2;
        }
        options.r_lo = static_cast<std::uint32_t>(
            std::stoul(range.substr(0, dots)));
        options.r_hi = static_cast<std::uint32_t>(
            std::stoul(range.substr(dots + 2)));
      } else if (arg == "--efsm") {
        options.efsm = true;
      } else if (arg == "--no-efsm") {
        options.efsm = false;
      } else if (arg == "--no-table") {
        options.table_backend = false;
      } else if (arg == "--no-artefact") {
        options.artifact_path.clear();
      } else if (arg == "--generated") {
        options.artifact_path = next();
      } else if (arg == "--json") {
        json_path = next();
      } else if (arg == "--dot") {
        dot_path = next();
      } else if (arg == "--mermaid") {
        mermaid_path = next();
      } else if (arg == "--mutate") {
        mutate = true;
      } else if (arg == "--jobs") {
        options.jobs = static_cast<unsigned>(std::stoul(next()));
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  if (options.r_lo < 2 || options.r_lo > options.r_hi) {
    std::cerr << "fsmcheck: bad replication range " << options.r_lo << ".."
              << options.r_hi << "\n";
    return 2;
  }
  // The checked-in artefact is the r=4 machine: comparing it only makes
  // sense when r=4 is part of the sweep.
  if (single_r && options.r_lo != 4) options.artifact_path.clear();

  if (mutate) return run_mutate(single_r ? options.r_lo : 4, options.jobs);

  const check::CheckRun run = check::run_commit_checks(options);
  for (const check::Finding& f : run.findings) {
    std::cout << check::to_string(f) << "\n";
  }
  std::cout << run.checks_run << " checks over r=" << options.r_lo << ".."
            << options.r_hi << ": " << run.findings.size() << " finding(s)\n";

  if (!json_path.empty()) {
    const obs::Meta meta = {
        {"tool", "fsmcheck"},
        {"model", "commit"},
        {"family",
         std::to_string(options.r_lo) + ".." + std::to_string(options.r_hi)},
        {"efsm", options.efsm ? "on" : "off"},
        {"table", options.table_backend ? "on" : "off"},
    };
    if (!write_file(json_path, check::write_findings_json(
                                   run.findings, meta, run.checks_run))) {
      return 2;
    }
  }
  if (!dot_path.empty() || !mermaid_path.empty()) {
    render_flagged(run.findings, options, dot_path, mermaid_path);
  }
  return run.findings.empty() ? 0 : 1;
}
