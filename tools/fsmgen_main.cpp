// fsmgen — command-line front end to the state machine generator.
//
// Executes an abstract model (the BFT commit protocol by default; the
// termination-detection model via --model) for a chosen parameter value
// and renders the resulting FSM (or the parameter-independent EFSM) as any
// of the paper's artefacts: text (Fig 14), DOT/XML/Mermaid diagrams
// (Fig 15), C++ source (Fig 16), or markdown documentation.
//
// Examples:
//   fsmgen -r 4 --render summary
//   fsmgen -r 7 --render dot -o commit_r7.dot
//   fsmgen -r 4 --render code --class-name CommitFsmR4
//   fsmgen --render efsm
//   fsmgen --model termination -n 8 --render doc
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include <memory>

#include "obs/metrics.hpp"

#include "check/structural.hpp"
#include "commit/commit_efsm.hpp"
#include "commit/commit_model.hpp"
#include "core/analysis.hpp"
#include "core/machine_cache.hpp"
#include "core/parallel.hpp"
#include "core/efsm/efsm_code_renderer.hpp"
#include "core/efsm/efsm_doc_renderer.hpp"
#include "core/efsm/efsm_dot_renderer.hpp"
#include "core/render/code_renderer.hpp"
#include "core/render/table_renderer.hpp"
#include "core/render/doc_renderer.hpp"
#include "core/render/dot_renderer.hpp"
#include "core/render/mermaid_renderer.hpp"
#include "core/render/text_renderer.hpp"
#include "core/render/xml_renderer.hpp"
#include "models/termination_efsm.hpp"
#include "models/termination_model.hpp"

namespace {

using namespace asa_repro;

void usage() {
  std::cout <<
      "usage: fsmgen [options]\n"
      "  --model NAME                 commit | termination (default commit)\n"
      "  -r, --replication-factor N   replication factor (default 4)\n"
      "  -n, --max-tasks N            task bound for --model termination\n"
      "  --render KIND                text | summary | dot | xml | mermaid |\n"
      "                               code | doc | efsm | efsm-code |\n"
      "                               efsm-dot | efsm-doc (default summary)\n"
      "  -o, --out FILE               write output to FILE (default stdout)\n"
      "  --class-name NAME            class name for code rendering\n"
      "  --backend KIND               code-render backend: switch (Fig 16\n"
      "                               per-message switch handlers, default) |\n"
      "                               table (dense [state][event] dispatch\n"
      "                               table with action arena)\n"
      "  --no-prune                   skip step 3 (prune unreachable)\n"
      "  --no-merge                   skip step 4 (merge equivalent)\n"
      "  -j, --jobs N                 generation threads; 0 = one per\n"
      "                               hardware thread (default), 1 = serial\n"
      "  --cache DIR                  persist/reuse generated machines in\n"
      "                               DIR (keyed by model, parameter and\n"
      "                               generator code version)\n"
      "  --stats                      print generation statistics to stderr\n"
      "  --profile FILE               write per-phase generation timings\n"
      "                               (enumerate/transitions/prune/merge/\n"
      "                               render) as asa-metrics/1 JSON. The one\n"
      "                               sanctioned wall-clock producer: numbers\n"
      "                               vary run to run, unlike sim metrics\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t r = 4;
  std::uint32_t max_tasks = 4;
  std::string model_name = "commit";
  std::string render = "summary";
  std::string out_path;
  std::string class_name = "GeneratedCommitFsm";
  std::string backend = "switch";
  std::string cache_dir;
  std::string profile_path;
  fsm::GenerationOptions options;
  options.jobs = 0;  // CLI default: one generation lane per hardware thread.
  bool stats = false;
  bool analyze_machine = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (arg == "-r" || arg == "--replication-factor") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      r = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (arg == "-n" || arg == "--max-tasks") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      max_tasks = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (arg == "--model") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      model_name = *v;
    } else if (arg == "--render") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      render = *v;
    } else if (arg == "-o" || arg == "--out") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      out_path = *v;
    } else if (arg == "--class-name") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      class_name = *v;
    } else if (arg == "--backend") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      backend = *v;
      if (backend != "switch" && backend != "table") {
        std::cerr << "unknown backend: " << backend << "\n";
        return 2;
      }
    } else if (arg == "--no-prune") {
      options.prune_unreachable = false;
    } else if (arg == "--no-merge") {
      options.merge_equivalent = false;
    } else if (arg == "-j" || arg == "--jobs") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      options.jobs = static_cast<unsigned>(std::stoul(*v));
    } else if (arg == "--cache") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      cache_dir = *v;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--profile") {
      const auto v = next();
      if (!v) { usage(); return 2; }
      profile_path = *v;
    } else if (arg == "--analyze") {
      analyze_machine = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return 2;
    }
  }

  std::string output;
  fsm::GenerationReport report;
  // --profile wall-clock anchors: generation phases come from `report`;
  // rendering is timed here (gen_end stays at wall_start for EFSM renders,
  // which have no generation run).
  const auto wall_start = std::chrono::steady_clock::now();
  auto gen_end = wall_start;
  bool profile_cache_hit = false;

  if (model_name != "commit" && model_name != "termination") {
    std::cerr << "unknown model: " << model_name << "\n";
    return 2;
  }
  const bool is_commit = model_name == "commit";

  if (backend == "table" && render != "code") {
    // The table backend only changes how concrete machines render as code;
    // EFSM code is parameter-generic and has no dense table to flatten to.
    std::cerr << "--backend table requires --render code\n";
    return 2;
  }

  if (render == "efsm" || render == "efsm-code" || render == "efsm-dot" ||
      render == "efsm-doc") {
    const fsm::Efsm efsm = is_commit ? commit::make_commit_efsm()
                                     : models::make_termination_efsm();
    if (render == "efsm") {
      output = efsm.describe();
    } else if (render == "efsm-dot") {
      output = fsm::EfsmDotRenderer(efsm.name).render(efsm);
    } else if (render == "efsm-doc") {
      output = fsm::EfsmDocRenderer().render(efsm);
    } else {
      fsm::CodeGenOptions cg;
      cg.class_name = class_name;
      cg.namespace_name = "asa_repro::generated";
      cg.base_class = "asa_repro::commit::CommitActions";
      cg.includes = {"commit/actions.hpp"};
      output = fsm::EfsmCodeRenderer(cg).render(efsm);
    }
  } else {
    std::unique_ptr<fsm::AbstractModel> model;
    std::string model_label;
    if (is_commit) {
      model = std::make_unique<commit::CommitModel>(r);
      model_label = "commit_r" + std::to_string(r);
    } else {
      model = std::make_unique<models::TerminationModel>(max_tasks);
      model_label = "termination_n" + std::to_string(max_tasks);
    }
    fsm::StateMachine machine;
    bool cache_hit = false;
    if (!cache_dir.empty()) {
      fsm::MachineCache cache{std::filesystem::path(cache_dir)};
      // Reject cached XML that parses but is structurally broken (edited
      // or corrupted on disk) — it is regenerated like a parse failure.
      cache.set_validator(check::structural_validator());
      bool generated = false;
      machine = cache.machine_for(
          model_name, is_commit ? r : max_tasks, [&] {
            generated = true;
            return model->generate_state_machine(options, &report);
          });
      cache_hit = !generated;
    } else {
      machine = model->generate_state_machine(options, &report);
    }
    gen_end = std::chrono::steady_clock::now();
    profile_cache_hit = cache_hit;
    if (render == "text") {
      output = fsm::TextRenderer().render(machine);
    } else if (render == "summary") {
      output = fsm::TextRenderer().render_summary(machine);
    } else if (render == "dot") {
      fsm::DotOptions dot;
      dot.graph_name = model_label;
      output = fsm::DotRenderer(dot).render(machine);
    } else if (render == "xml") {
      output = fsm::XmlRenderer().render(machine);
    } else if (render == "mermaid") {
      output = fsm::MermaidRenderer().render(machine);
    } else if (render == "code") {
      fsm::CodeGenOptions cg;
      cg.class_name = class_name;
      cg.namespace_name = "asa_repro::generated";
      if (is_commit) {
        cg.base_class = "asa_repro::commit::CommitActions";
        cg.includes = {"commit/actions.hpp"};
      } else {
        // Termination actions route through the generic sink base.
        cg.base_class = "asa_repro::fsm::DynamicFsmBase";
        cg.action_style = fsm::CodeGenOptions::ActionStyle::kSink;
        cg.includes = {"core/generated_api.hpp"};
      }
      output = backend == "table" ? fsm::TableCodeRenderer(cg).render(machine)
                                  : fsm::CodeRenderer(cg).render(machine);
    } else if (render == "doc") {
      fsm::DocOptions doc;
      if (is_commit) {
        const auto& m = static_cast<const commit::CommitModel&>(*model);
        doc.title = "BFT commit protocol FSM, replication factor " +
                    std::to_string(r);
        doc.preamble =
            "Generated from the abstract model of the ASA distributed "
            "commit algorithm (f = " + std::to_string(m.max_faulty()) +
            ", vote threshold " + std::to_string(m.vote_threshold()) +
            ", commit threshold " + std::to_string(m.commit_threshold()) +
            ").";
      } else {
        doc.title = "Termination detection FSM, task bound " +
                    std::to_string(max_tasks);
        doc.preamble =
            "Generated from the termination-detection abstract model "
            "(section 5.2's message-counting applicability claim).";
      }
      output = fsm::DocRenderer(doc).render(machine);
    } else {
      std::cerr << "unknown render kind: " << render << "\n";
      return 2;
    }
    if (analyze_machine) {
      std::cerr << fsm::analyze(machine, options.jobs).to_string();
    }
    if (stats) {
      if (cache_hit) {
        std::cerr << "cache hit:       " << cache_dir << "/"
                  << fsm::MachineCache::file_name(model_name,
                                                  is_commit ? r : max_tasks)
                  << " (no generation run)\n"
                  << "final states:    " << machine.state_count() << "\n";
      } else {
        std::cerr << "jobs:            " << fsm::resolve_jobs(options.jobs)
                  << "\n"
                  << "initial states:  " << report.initial_states << "\n"
                  << "transitions:     " << report.transitions << "\n"
                  << "after pruning:   " << report.reachable_states << "\n"
                  << "after merging:   " << report.final_states << "\n"
                  << "generation time: "
                  << std::chrono::duration<double, std::milli>(
                         report.total_time())
                         .count()
                  << " ms\n";
      }
    }
  }

  if (!profile_path.empty()) {
    const auto render_end = std::chrono::steady_clock::now();
    const auto us = [](auto d) {
      return static_cast<std::int64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    obs::MetricsRegistry profile;
    profile.counter("gen.initial_states").set(report.initial_states);
    profile.counter("gen.transitions").set(report.transitions);
    profile.counter("gen.reachable_states").set(report.reachable_states);
    profile.counter("gen.final_states").set(report.final_states);
    profile.gauge("gen.enumerate_us").set(us(report.enumerate_time));
    profile.gauge("gen.transition_us").set(us(report.transition_time));
    profile.gauge("gen.prune_us").set(us(report.prune_time));
    profile.gauge("gen.merge_us").set(us(report.merge_time));
    profile.gauge("gen.render_us").set(us(render_end - gen_end));
    profile.gauge("gen.total_us").set(us(render_end - wall_start));
    const obs::Meta meta{
        {"tool", "fsmgen"},
        {"model", model_name},
        {"parameter", std::to_string(model_name == "commit" ? r : max_tasks)},
        {"render", render},
        {"cache", cache_dir.empty() ? "off"
                  : profile_cache_hit ? "hit"
                                      : "miss"},
        {"clock", "wall"},
    };
    std::ofstream profile_out(profile_path);
    if (!profile_out) {
      std::cerr << "cannot write " << profile_path << "\n";
      return 1;
    }
    profile_out << obs::write_metrics_json(profile, meta);
  }

  if (out_path.empty()) {
    std::cout << output;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << output;
  }
  return 0;
}
