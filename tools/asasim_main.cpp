// asasim — command-line ASA cluster simulator.
//
// Spins up the whole stack (Chord ring, storage hosts, commit peers,
// version-history service), runs a configurable update workload against a
// set of GUIDs under configurable faults, and reports protocol statistics.
// A deterministic harness for exploring the deployed system's behaviour
// without writing code.
//
//   asasim --nodes 16 --replication 4 --clients 3 --updates 9
//          --byzantine equivocator:1 --drop 0.05 --seed 7 --trace
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "commit/replay.hpp"
#include "obs/metrics.hpp"
#include "sim/workload.hpp"
#include "storage/cluster.hpp"

using namespace asa_repro;
using namespace asa_repro::storage;

namespace {

void usage() {
  std::cout <<
      "usage: asasim [options]\n"
      "  --nodes N            cluster size (default 16)\n"
      "  --replication R      replication factor (default 4)\n"
      "  --clients C          concurrent clients (default 2)\n"
      "  --updates U          total updates across clients (default 6)\n"
      "  --guids G            number of GUIDs written (default 2)\n"
      "  --byzantine KIND:N   crash | equivocator | withholder, N nodes\n"
      "  --partition A:B[:T]  cut links between nodes A and B both ways at\n"
      "                       time 0; heal at time T us (default: never);\n"
      "                       repeatable\n"
      "  --drop P             message drop probability (default 0)\n"
      "  --duplicate P        message duplication probability (default 0)\n"
      "  --link A:B:CLASS     install a latency class (lan | wan | sat) on\n"
      "                       the directed link A->B; repeatable (set both\n"
      "                       directions for a symmetric path)\n"
      "  --join T             a fresh node joins the ring at time T us;\n"
      "                       repeatable\n"
      "  --leave N:T          node N gracefully leaves (key-range handoff)\n"
      "                       at time T us; repeatable\n"
      "  --depart N:T         node N departs abruptly (no handoff) at time\n"
      "                       T us; repeatable\n"
      "  --writers W          contention workload: W concurrent writers\n"
      "                       spread --updates operations over the GUIDs by\n"
      "                       zipf popularity (replaces the client loop)\n"
      "  --zipf Z             zipf skew x100 for --writers (default 90)\n"
      "  --reads P            percent of workload operations that are\n"
      "                       agreed reads (default 0)\n"
      "  --open-loop          open-loop arrivals for --writers\n"
      "  --seed S             simulation seed (default 42)\n"
      "  --trace              dump commit/abort trace events\n"
      "  --metrics-out FILE   write run metrics (asa-metrics/1 JSON)\n"
      "  --trace-out FILE     write causal event trace (asa-trace/1 JSONL)\n"
      "  --spans-out FILE     write commit-path spans (asa-span/1 JSON),\n"
      "                       fed to asareport --critical-path\n"
      "  --flight N           per-node flight recorder, N recent events\n"
      "                       (dumped as part of run output)\n"
      "  --replay FILE        replay an asa-replay/1 counterexample plan\n"
      "                       (from `fsmcheck --protocol --replay-out`)\n"
      "                       against the real runtime and re-check the\n"
      "                       violated property; all other options are\n"
      "                       ignored\n";
}

std::optional<commit::Behaviour> parse_behaviour(const std::string& name) {
  if (name == "crash") return commit::Behaviour::kCrash;
  if (name == "equivocator") return commit::Behaviour::kEquivocator;
  if (name == "withholder") return commit::Behaviour::kWithholder;
  return std::nullopt;
}

struct PartitionSpec {
  std::size_t a = 0;
  std::size_t b = 0;
  sim::Time heal_at = 0;  // 0 = never heal.
};

struct LinkSpec {
  std::size_t a = 0;
  std::size_t b = 0;
  std::string klass;
};

// "A:B:class" with class in {lan, wan, sat}.
std::optional<LinkSpec> parse_link(const std::string& spec) {
  const std::size_t first = spec.find(':');
  if (first == std::string::npos) return std::nullopt;
  const std::size_t second = spec.find(':', first + 1);
  if (second == std::string::npos) return std::nullopt;
  try {
    LinkSpec out;
    out.a = std::stoul(spec.substr(0, first));
    out.b = std::stoul(spec.substr(first + 1, second - first - 1));
    out.klass = spec.substr(second + 1);
    if (!sim::link_profile(out.klass).has_value()) return std::nullopt;
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct ChurnSpec {
  enum class Kind { kJoin, kLeave, kDepart } kind = Kind::kJoin;
  std::size_t node = 0;  // Unused for joins.
  sim::Time at = 0;
};

// "N:T" (node, time) for --leave / --depart.
std::optional<ChurnSpec> parse_churn(ChurnSpec::Kind kind,
                                     const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return std::nullopt;
  try {
    ChurnSpec out;
    out.kind = kind;
    out.node = std::stoul(spec.substr(0, colon));
    out.at = std::stoull(spec.substr(colon + 1));
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// "A:B" or "A:B:heal_at" (times in simulated microseconds).
std::optional<PartitionSpec> parse_partition(const std::string& spec) {
  const std::size_t first = spec.find(':');
  if (first == std::string::npos) return std::nullopt;
  const std::size_t second = spec.find(':', first + 1);
  try {
    PartitionSpec out;
    out.a = std::stoul(spec.substr(0, first));
    out.b = std::stoul(spec.substr(
        first + 1,
        second == std::string::npos ? std::string::npos : second - first - 1));
    if (second != std::string::npos) {
      out.heal_at = std::stoull(spec.substr(second + 1));
    }
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ClusterConfig config;
  config.nodes = 16;
  config.replication_factor = 4;
  config.seed = 42;
  int clients = 2;
  int updates = 6;
  int guids = 2;
  commit::Behaviour byz_kind = commit::Behaviour::kHonest;
  std::size_t byz_count = 0;
  std::vector<PartitionSpec> partitions;
  std::vector<LinkSpec> links;
  std::vector<ChurnSpec> churn;
  std::vector<sim::Time> joins;
  int writers = 0;
  double zipf = 0.9;
  double read_fraction = 0.0;
  bool open_loop = false;
  double duplicate_probability = 0.0;
  bool dump_trace = false;
  std::string metrics_out;
  std::string trace_out;
  std::string spans_out;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (arg == "--nodes") {
      config.nodes = std::stoul(next());
    } else if (arg == "--replication") {
      config.replication_factor =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--clients") {
      clients = std::stoi(next());
    } else if (arg == "--updates") {
      updates = std::stoi(next());
    } else if (arg == "--guids") {
      guids = std::stoi(next());
    } else if (arg == "--drop") {
      config.drop_probability = std::stod(next());
    } else if (arg == "--duplicate") {
      duplicate_probability = std::stod(next());
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--trace") {
      dump_trace = true;
      config.tracing = true;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
      config.metrics = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
      config.tracing = true;
    } else if (arg == "--spans-out") {
      spans_out = next();
      config.spans = true;
    } else if (arg == "--flight") {
      config.flight_capacity = std::stoul(next());
    } else if (arg == "--byzantine") {
      const std::string spec = next();
      const std::size_t colon = spec.find(':');
      const auto kind = parse_behaviour(spec.substr(0, colon));
      if (!kind.has_value()) {
        std::cerr << "unknown behaviour: " << spec << "\n";
        return 2;
      }
      byz_kind = *kind;
      byz_count = colon == std::string::npos
                      ? 1
                      : std::stoul(spec.substr(colon + 1));
    } else if (arg == "--partition") {
      const std::string spec = next();
      const auto parsed = parse_partition(spec);
      if (!parsed.has_value()) {
        std::cerr << "bad partition spec (want A:B or A:B:heal_at): " << spec
                  << "\n";
        return 2;
      }
      partitions.push_back(*parsed);
    } else if (arg == "--link") {
      const std::string spec = next();
      const auto parsed = parse_link(spec);
      if (!parsed.has_value()) {
        std::cerr << "bad link spec (want A:B:lan|wan|sat): " << spec << "\n";
        return 2;
      }
      links.push_back(*parsed);
    } else if (arg == "--join") {
      joins.push_back(std::stoull(next()));
    } else if (arg == "--leave" || arg == "--depart") {
      const bool leave = arg == "--leave";
      const std::string spec = next();
      const auto parsed = parse_churn(leave ? ChurnSpec::Kind::kLeave
                                            : ChurnSpec::Kind::kDepart,
                                      spec);
      if (!parsed.has_value()) {
        std::cerr << "bad churn spec (want N:T): " << spec << "\n";
        return 2;
      }
      churn.push_back(*parsed);
    } else if (arg == "--writers") {
      writers = std::stoi(next());
    } else if (arg == "--zipf") {
      zipf = std::stoi(next()) / 100.0;
    } else if (arg == "--reads") {
      read_fraction = std::stoi(next()) / 100.0;
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else if (arg == "--replay") {
      replay_path = next();
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::cerr << "asasim: cannot read " << replay_path << "\n";
      return 2;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const auto plan = commit::ReplayPlan::parse(text);
    if (!plan.has_value()) {
      std::cerr << "asasim: " << replay_path
                << " is not an asa-replay/1 plan\n";
      return 2;
    }
    std::cout << "replaying " << plan->check << " (r=" << plan->r
              << ", mutation="
              << (plan->mutation.empty() ? "none" : plan->mutation) << ", "
              << plan->schedule.size() << " steps)\n";
    const commit::ReplayOutcome outcome =
        commit::run_replay(*plan, dump_trace ? &std::cout : nullptr);
    if (!outcome.supported) {
      std::cout << "replay unsupported: " << outcome.description << "\n";
      return 0;
    }
    if (outcome.reproduced) {
      std::cout << "violation reproduced: " << plan->check << " — "
                << outcome.description << "\n";
      return 0;
    }
    std::cout << "violation NOT reproduced: " << plan->check << " — "
              << outcome.description << "\n";
    return 1;
  }

  config.retry.base_timeout = 80'000;
  config.retry.max_attempts = 25;
  AsaCluster cluster(config);
  cluster.network().set_duplicate_probability(duplicate_probability);
  for (std::size_t i = 0; i < byz_count && i < cluster.node_count(); ++i) {
    cluster.make_byzantine(i, byz_kind);
  }
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    cluster.host(i).peer().enable_abort(60'000, 80'000);
  }
  for (const PartitionSpec& p : partitions) {
    if (p.a >= cluster.node_count() || p.b >= cluster.node_count()) {
      std::cerr << "partition node out of range: " << p.a << ":" << p.b
                << "\n";
      return 2;
    }
    const auto a = static_cast<sim::NodeAddr>(p.a);
    const auto b = static_cast<sim::NodeAddr>(p.b);
    cluster.network().partition_bidirectional(a, b);
    if (p.heal_at > 0) {
      cluster.scheduler().schedule_at(p.heal_at, [&cluster, a, b]() {
        cluster.network().heal(a, b);
        cluster.network().heal(b, a);
      });
    }
  }
  for (const LinkSpec& l : links) {
    if (l.a >= cluster.node_count() || l.b >= cluster.node_count()) {
      std::cerr << "link node out of range: " << l.a << ":" << l.b << "\n";
      return 2;
    }
    cluster.network().set_link_profile(static_cast<sim::NodeAddr>(l.a),
                                       static_cast<sim::NodeAddr>(l.b),
                                       *sim::link_profile(l.klass));
  }
  for (const sim::Time at : joins) {
    cluster.scheduler().schedule_at(
        at, [&cluster] { (void)cluster.add_node(); });
  }
  for (const ChurnSpec& c : churn) {
    if (c.node >= cluster.node_count()) {
      std::cerr << "churn node out of range: " << c.node << "\n";
      return 2;
    }
    cluster.scheduler().schedule_at(c.at, [&cluster, c] {
      (void)cluster.remove_node(c.node,
                                c.kind == ChurnSpec::Kind::kLeave);
    });
  }

  std::cout << "cluster: " << config.nodes << " nodes, r="
            << config.replication_factor << " (f=" << cluster.f() << "), "
            << byz_count << " byzantine, drop=" << config.drop_probability
            << ", seed=" << config.seed << "\n";

  // Workload. Default: `updates` version appends spread over `guids`
  // GUIDs and round-robined across clients (each client is one
  // VersionHistoryService; the first owns reads). With --writers W, the
  // contention engine instead spreads the operations over W concurrent
  // writers whose key choices follow a zipf distribution (several writers
  // hammering the same hot GUID), closed- or open-loop.
  int committed = 0, failed = 0, reads_ok = 0, reads_failed = 0;
  std::uint64_t total_attempts = 0;
  double total_latency_ms = 0;
  std::vector<int> per_writer_commits;
  if (writers > 0) {
    // Contending writers funnel through each GUID's serialization point;
    // racing same-GUID appends is outside the protocol's supported usage.
    cluster.version_history().set_serialize_appends(true);
    sim::WorkloadConfig workload;
    workload.writers = static_cast<std::uint32_t>(writers);
    workload.keys = static_cast<std::uint32_t>(guids);
    workload.operations = static_cast<std::uint32_t>(std::max(0, updates));
    workload.zipf = zipf;
    workload.read_fraction = read_fraction;
    workload.open_loop = open_loop;
    const auto per_writer = sim::generate_workload(workload, config.seed);
    per_writer_commits.assign(per_writer.size(), 0);
    std::function<void(std::size_t, std::size_t)> submit_op =
        [&](std::size_t w, std::size_t i) {
          if (i >= per_writer[w].size()) return;
          const sim::WorkloadOp& op = per_writer[w][i];
          const Guid guid = Guid::named("guid:" + std::to_string(op.key));
          if (op.read) {
            cluster.version_history().read(
                guid, [&, w, i](const HistoryReadResult& r) {
                  if (r.ok) ++reads_ok; else ++reads_failed;
                  if (!open_loop) submit_op(w, i + 1);
                });
            return;
          }
          const Pid pid = Pid::of(block_from(
              "w" + std::to_string(op.writer) + " op" +
              std::to_string(op.sequence)));
          cluster.version_history().append(
              guid, pid, [&, w, i](const commit::CommitResult& r) {
                if (r.committed) {
                  ++committed;
                  ++per_writer_commits[w];
                  total_attempts += r.attempts;
                  total_latency_ms += static_cast<double>(r.latency) / 1000.0;
                } else {
                  ++failed;
                }
                if (!open_loop) submit_op(w, i + 1);
              });
        };
    for (std::size_t w = 0; w < per_writer.size(); ++w) {
      if (open_loop) {
        for (std::size_t i = 0; i < per_writer[w].size(); ++i) {
          cluster.scheduler().schedule_at(
              per_writer[w][i].at, [&submit_op, w, i] { submit_op(w, i); });
        }
      } else if (!per_writer[w].empty()) {
        cluster.scheduler().schedule_at(
            per_writer[w][0].at, [&submit_op, w] { submit_op(w, 0); });
      }
    }
    cluster.run();
  } else {
    for (int u = 0; u < updates; ++u) {
      const Guid guid = Guid::named("guid:" + std::to_string(u % guids));
      const Pid pid = Pid::of(block_from("update " + std::to_string(u)));
      cluster.version_history().append(
          guid, pid, [&](const commit::CommitResult& r) {
            if (r.committed) {
              ++committed;
              total_attempts += r.attempts;
              total_latency_ms += static_cast<double>(r.latency) / 1000.0;
            } else {
              ++failed;
            }
          });
      // Stagger client submissions slightly (concurrency within guids).
      if ((u + 1) % clients == 0) cluster.run_for(2'000);
    }
    cluster.run();
  }

  std::cout << "\nworkload: " << committed << "/" << updates
            << " updates committed, " << failed << " failed\n";
  if (writers > 0) {
    std::cout << "reads: " << reads_ok << " agreed, " << reads_failed
              << " without quorum\n";
    for (std::size_t w = 0; w < per_writer_commits.size(); ++w) {
      std::cout << "writer " << w << ": " << per_writer_commits[w]
                << " commits\n";
    }
  }
  if (committed > 0) {
    std::cout << "mean attempts " << (double)total_attempts / committed
              << ", mean latency "
              << total_latency_ms / committed << " ms\n";
  }

  for (int g = 0; g < guids; ++g) {
    const Guid guid = Guid::named("guid:" + std::to_string(g));
    HistoryReadResult read;
    cluster.version_history().read(
        guid, [&](const HistoryReadResult& r) { read = r; });
    cluster.run();
    std::cout << "guid:" << g << " agreed history length "
              << read.versions.size() << " (" << read.replies
              << " peers replied, " << (read.ok ? "ok" : "NO QUORUM")
              << ")\n";
  }

  const auto& net = cluster.network().stats();
  std::cout << "\nnetwork: " << net.sent << " sent, " << net.delivered
            << " delivered, " << net.dropped << " dropped, "
            << net.duplicated << " duplicated\n";
  std::uint64_t votes = 0, commits = 0, aborts = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    votes += cluster.host(i).peer().stats().votes_sent;
    commits += cluster.host(i).peer().stats().commits_sent;
    aborts += cluster.host(i).peer().stats().aborted;
  }
  std::cout << "protocol: " << votes << " votes sent, " << commits
            << " commits sent, " << aborts << " instance aborts\n";

  // Long-lived peers collect finished machine instances (memory stays
  // bounded by the live count).
  std::size_t collected = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    collected += cluster.host(i).peer().collect_finished();
  }
  std::cout << "gc: " << collected << " finished machine instances "
            << "collected\n";

  if (dump_trace) {
    std::cout << "\ncommit/abort trace:\n";
    for (const auto& e : cluster.trace().events()) {
      if (e.category == "commit" || e.category == "abort") {
        std::cout << "  [" << e.time << "us] node" << e.node << " "
                  << e.category << " " << e.detail << "\n";
      }
    }
  }

  if (!metrics_out.empty()) {
    cluster.snapshot_metrics();
    const obs::Meta meta{
        {"tool", "asasim"},
        {"seed", std::to_string(config.seed)},
        {"nodes", std::to_string(config.nodes)},
        {"replication", std::to_string(config.replication_factor)},
        {"updates", std::to_string(updates)},
        {"guids", std::to_string(guids)},
    };
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 2;
    }
    out << obs::write_metrics_json(cluster.metrics(), meta);
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 2;
    }
    out << "{\"schema\":\"asa-trace/1\",\"tool\":\"asasim\",\"seed\":"
        << config.seed << "}\n";
    cluster.trace().dump_jsonl(out);
    std::cout << "trace written to " << trace_out << " ("
              << cluster.trace().events().size() << " events)\n";
  }
  if (!spans_out.empty()) {
    const obs::Meta meta{
        {"tool", "asasim"},
        {"seed", std::to_string(config.seed)},
        {"nodes", std::to_string(config.nodes)},
        {"replication", std::to_string(config.replication_factor)},
        {"updates", std::to_string(updates)},
        {"guids", std::to_string(guids)},
    };
    std::ofstream out(spans_out);
    if (!out) {
      std::cerr << "cannot write " << spans_out << "\n";
      return 2;
    }
    out << obs::write_spans_json(cluster.spans(), meta);
    std::cout << "spans written to " << spans_out << " ("
              << cluster.spans().spans().size() << " spans)\n";
  }
  if (cluster.flight().enabled()) {
    std::cout << "\nflight recorder (" << cluster.flight().total_recorded()
              << " events recorded, last " << cluster.flight().capacity()
              << " per node kept):\n";
    for (const std::uint32_t lane : cluster.flight().lanes()) {
      const auto events = cluster.flight().lane(lane);
      std::cout << "  node" << lane << ": " << events.size()
                << " event(s), tail:\n";
      const std::size_t first = events.size() > 3 ? events.size() - 3 : 0;
      for (std::size_t i = first; i < events.size(); ++i) {
        std::cout << "    [" << events[i].t << "us] " << events[i].category
                  << " " << events[i].detail << "\n";
      }
    }
  }
  return failed == 0 ? 0 : 1;
}
