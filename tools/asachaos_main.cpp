// asachaos — randomized chaos campaigns against the simulated ASA cluster.
//
// Runs N seeds; each seed derives a deterministic workload and a random
// fault plan (crash/restart, Byzantine flips, partitions, loss bursts,
// block corruption) whose concurrent node faults never exceed the budget
// (default f = floor((r-1)/3), the paper's claimed tolerance). Every run
// is checked against the protocol's safety invariants (history prefix
// agreement, validity, no duplicate commits) plus bounded-liveness and
// durability. On a violation the failing fault plan is delta-debugged to
// a minimal reproducer and written to a replay file that re-runs the
// exact schedule.
//
//   asachaos --seeds 200                      # campaign, expect clean
//   asachaos --seeds 5 --equivocators 2 --expect-violation
//                                             # >f faults: detection demo
//   asachaos --replay chaos-seed17.replay     # re-run a recorded schedule
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/postmortem.hpp"
#include "storage/chaos.hpp"

using namespace asa_repro;
using namespace asa_repro::storage;

namespace {

void usage() {
  std::cout <<
      "usage: asachaos [options]\n"
      "  --seeds N          number of randomized campaigns (default 50)\n"
      "  --seed0 S          first seed (default 1)\n"
      "  --nodes N          cluster size (default 12)\n"
      "  --replication R    replication factor (default 4)\n"
      "  --updates U        version appends per run (default 8)\n"
      "  --guids G          GUIDs written per run (default 2)\n"
      "  --blocks B         data blocks stored per run (default 3)\n"
      "  --burst B          appends in flight per GUID (default 1; 2 when\n"
      "                     --equivocators is set: concurrent same-GUID\n"
      "                     updates are what equivocators can split)\n"
      "  --max-events M     scheduler event bound per run (default 2000000)\n"
      "  --faults N         concurrent node-fault budget (default f)\n"
      "  --equivocators K   force K permanent equivocators (faults > f)\n"
      "  --expect-violation exit 0 only if a violation is found, shrunk\n"
      "                     and its replay file reproduces it\n"
      "  --no-durability    volatile nodes (the pre-journal behaviour):\n"
      "                     restart recovers from peers only, and generated\n"
      "                     plans carry no disk-fault episodes\n"
      "  --durability-smoke run the deterministic journal-corruption and\n"
      "                     crash-consistency smoke instead of a campaign\n"
      "                     (torn write, bit-rot, full peer-set crash, and\n"
      "                     the volatile counterfactual); exit 0 when every\n"
      "                     expectation holds\n"
      "  --churn            membership-churn episodes in generated plans\n"
      "                     (ring joins, graceful leaves, abrupt departs)\n"
      "  --wan              per-link WAN adversity episodes in generated\n"
      "                     plans (lan/wan/sat latency classes with\n"
      "                     Gilbert-Elliott burst loss, reset before the\n"
      "                     horizon)\n"
      "  --writers W        contention workload: W concurrent writers\n"
      "                     spread --updates operations over the GUIDs by\n"
      "                     zipf popularity (0 = legacy per-GUID chains)\n"
      "  --zipf Z           zipf skew x100 for --writers (default 90)\n"
      "  --reads P          percent of workload operations that are agreed\n"
      "                     reads (default 0)\n"
      "  --open-loop        open-loop arrivals (operations fire on their\n"
      "                     generated schedule regardless of completions)\n"
      "  --churn-smoke      run the deterministic churn + handoff smoke\n"
      "                     instead of a campaign: a graceful leave wave\n"
      "                     over the whole peer set must keep the history\n"
      "                     readable, churn mid-commit must not break the\n"
      "                     commit, and the no-handoff counterfactual must\n"
      "                     provably lose acknowledged data\n"
      "  --no-handoff       with --churn-smoke: run only the counterfactual\n"
      "                     (graceful leaves with the key-range handoff\n"
      "                     suppressed — demonstrates the data loss)\n"
      "  --soak S           long-soak mode: rerun the campaign's seed 0 in\n"
      "                     consecutive horizon windows until S simulated\n"
      "                     seconds have elapsed, checking invariants per\n"
      "                     window and commit-rate drift across windows\n"
      "  --replay FILE      re-run a recorded schedule and report\n"
      "  --out DIR          directory for replay files (default .)\n"
      "  --metrics-out FILE campaign-aggregated metrics (asa-metrics/1)\n"
      "  --trace-out FILE   concatenated per-seed causal traces, each\n"
      "                     prefixed by a campaign seed marker (asa-trace/1)\n"
      "  --spans-out FILE   campaign-aggregated commit-path spans\n"
      "                     (asa-span/1), fed to asareport --critical-path\n"
      "  --postmortem-dir D on invariant violation or crash, write an\n"
      "                     asa-postmortem/1 bundle (flight-recorder tails,\n"
      "                     metrics, spans, seed, shrunk fault plan) to\n"
      "                     D/postmortem-seed<N>.json; same seed -> byte-\n"
      "                     identical bundle\n"
      "  --verbose          per-seed progress lines\n";
}

void print_violations(const ChaosReport& report) {
  for (const Violation& violation : report.violations) {
    std::cout << "  [" << violation.invariant << "] " << violation.detail
              << "\n";
  }
}

/// Build a post-mortem bundle for a violating seed by RE-RUNNING its
/// schedule with dedicated recorders. The sim is deterministic, so the
/// re-run reproduces the exact failing timeline — and two invocations on
/// the same seed produce byte-identical bundles (no wall-clock anywhere).
/// `shrunk` carries the delta-debugged minimal plan (empty for crashes
/// caught before shrinking).
std::string build_postmortem(const ChaosConfig& config,
                             const sim::FaultPlan& plan,
                             const sim::FaultPlan& shrunk) {
  obs::MetricsRegistry pm_metrics(true);
  obs::FlightRecorder pm_flight(256);
  obs::SpanRecorder pm_spans;
  obs::PostmortemViolations violations;
  std::vector<std::string> plan_lines;
  std::vector<std::string> shrunk_lines;
  for (const sim::FaultEvent& e : plan.events()) {
    plan_lines.push_back(e.serialize());
  }
  for (const sim::FaultEvent& e : shrunk.events()) {
    shrunk_lines.push_back(e.serialize());
  }
  try {
    const ChaosReport report =
        run_plan(config, plan, &pm_metrics, nullptr, &pm_flight, &pm_spans);
    for (const Violation& v : report.violations) {
      violations.emplace_back(v.invariant, v.detail);
    }
  } catch (const std::exception& e) {
    violations.emplace_back("crash", e.what());
  }
  const obs::Meta meta{
      {"tool", "asachaos"},
      {"seed", std::to_string(config.seed)},
      {"nodes", std::to_string(config.nodes)},
      {"replication", std::to_string(config.replication)},
  };
  return obs::write_postmortem_json(meta, violations, plan_lines,
                                    shrunk_lines, pm_flight, pm_metrics,
                                    pm_spans);
}

/// Write the bundle for `config.seed` into `dir`; returns the path ("" on
/// I/O failure).
std::string write_postmortem(const std::string& dir,
                             const ChaosConfig& config,
                             const sim::FaultPlan& plan,
                             const sim::FaultPlan& shrunk) {
  const std::string path =
      dir + "/postmortem-seed" + std::to_string(config.seed) + ".json";
  std::ofstream out(path);
  if (!out) return std::string();
  out << build_postmortem(config, plan, shrunk);
  return path;
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "asachaos: cannot open replay file " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto decoded = decode_replay(buffer.str());
  if (!decoded.has_value()) {
    std::cerr << "asachaos: malformed replay file " << path << "\n";
    return 2;
  }
  const auto& [config, plan] = *decoded;
  std::cout << "replaying seed " << config.seed << " (" << plan.size()
            << " fault events)\n";
  const ChaosReport report = run_plan(config, plan);
  std::cout << "committed " << report.committed << ", failed "
            << report.failed << ", " << report.events_executed
            << " events, " << report.violations.size() << " violation(s)\n";
  print_violations(report);
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosConfig config;
  std::uint64_t seeds = 50;
  std::uint64_t seed0 = 1;
  std::string replay_path;
  std::string out_dir = ".";
  std::string metrics_out;
  std::string trace_out;
  std::string spans_out;
  std::string postmortem_dir;
  bool expect_violation = false;
  bool durability_smoke = false;
  bool churn_smoke = false;
  bool no_handoff = false;
  std::uint64_t soak_seconds = 0;
  bool verbose = false;
  bool burst_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    try {
      if (arg == "-h" || arg == "--help") {
        usage();
        return 0;
      } else if (arg == "--seeds") {
        seeds = std::stoull(next());
      } else if (arg == "--seed0") {
        seed0 = std::stoull(next());
      } else if (arg == "--nodes") {
        config.nodes = std::stoul(next());
      } else if (arg == "--replication") {
        config.replication = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (arg == "--updates") {
        config.updates = std::stoi(next());
      } else if (arg == "--guids") {
        config.guids = std::stoi(next());
      } else if (arg == "--blocks") {
        config.blocks = std::stoi(next());
      } else if (arg == "--burst") {
        config.burst = std::stoi(next());
        burst_set = true;
      } else if (arg == "--max-events") {
        config.max_events = std::stoul(next());
      } else if (arg == "--faults") {
        config.fault_budget = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (arg == "--equivocators") {
        config.equivocators = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (arg == "--expect-violation") {
        expect_violation = true;
      } else if (arg == "--no-durability") {
        config.durability = false;
      } else if (arg == "--durability-smoke") {
        durability_smoke = true;
      } else if (arg == "--churn") {
        config.churn = true;
      } else if (arg == "--wan") {
        config.wan = true;
      } else if (arg == "--writers") {
        config.writers = std::stoi(next());
      } else if (arg == "--zipf") {
        config.zipf = std::stoi(next()) / 100.0;
      } else if (arg == "--reads") {
        config.read_fraction = std::stoi(next()) / 100.0;
      } else if (arg == "--open-loop") {
        config.open_loop = true;
      } else if (arg == "--churn-smoke") {
        churn_smoke = true;
      } else if (arg == "--no-handoff") {
        no_handoff = true;
      } else if (arg == "--soak") {
        soak_seconds = std::stoull(next());
      } else if (arg == "--replay") {
        replay_path = next();
      } else if (arg == "--out") {
        out_dir = next();
      } else if (arg == "--metrics-out") {
        metrics_out = next();
      } else if (arg == "--trace-out") {
        trace_out = next();
      } else if (arg == "--spans-out") {
        spans_out = next();
      } else if (arg == "--postmortem-dir") {
        postmortem_dir = next();
      } else if (arg == "--verbose") {
        verbose = true;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path);

  if (durability_smoke) {
    std::cout << "durability smoke (seed " << seed0 << "):\n";
    const DurabilitySmokeReport smoke = run_durability_smoke(seed0);
    for (const std::string& line : smoke.notes) {
      std::cout << "  " << line << "\n";
    }
    for (const std::string& line : smoke.failures) {
      std::cout << "  FAIL: " << line << "\n";
    }
    std::cout << (smoke.ok() ? "durability smoke passed\n"
                             : "durability smoke FAILED\n");
    return smoke.ok() ? 0 : 1;
  }

  if (churn_smoke) {
    std::cout << "churn smoke (seed " << seed0
              << (no_handoff ? ", counterfactual only" : "") << "):\n";
    const DurabilitySmokeReport smoke =
        run_churn_smoke(seed0, /*handoff=*/!no_handoff);
    for (const std::string& line : smoke.notes) {
      std::cout << "  " << line << "\n";
    }
    for (const std::string& line : smoke.failures) {
      std::cout << "  FAIL: " << line << "\n";
    }
    std::cout << (smoke.ok() ? "churn smoke passed\n"
                             : "churn smoke FAILED\n");
    return smoke.ok() ? 0 : 1;
  }

  if (soak_seconds > 0) {
    config.seed = seed0;
    obs::MetricsRegistry soak_metrics(!metrics_out.empty());
    obs::MetricsRegistry* soak_sink =
        metrics_out.empty() ? nullptr : &soak_metrics;
    std::cout << "soak: " << soak_seconds << " simulated seconds in windows"
              << " of " << config.horizon << " us (seed " << seed0 << ")\n";
    const SoakReport soak =
        run_soak(config, static_cast<sim::Time>(soak_seconds) * 1'000'000,
                 soak_sink);
    for (std::size_t w = 0; w < soak.commits_per_sec.size(); ++w) {
      if (verbose) {
        std::cout << "  window " << w << ": " << soak.commits_per_sec[w]
                  << " commits/sec\n";
      }
    }
    for (const Violation& v : soak.violations) {
      std::cout << "  [" << v.invariant << "] " << v.detail << "\n";
    }
    for (const std::string& f : soak.failures) {
      std::cout << "  FAIL: " << f << "\n";
    }
    if (!metrics_out.empty()) {
      const obs::Meta meta{
          {"tool", "asachaos"},
          {"mode", "soak"},
          {"seed0", std::to_string(seed0)},
          {"windows", std::to_string(soak.windows)},
      };
      std::ofstream out(metrics_out);
      if (out) out << obs::write_metrics_json(soak_metrics, meta);
    }
    std::cout << "soak summary: " << soak.windows << " windows, "
              << soak.violations.size() << " violation(s), "
              << soak.failures.size() << " drift failure(s)\n";
    return soak.ok() ? 0 : 1;
  }

  // Equivocators split concurrent same-GUID proposals; give them some.
  if (config.equivocators > 0 && !burst_set) config.burst = 2;

  std::cout << "chaos campaign: " << seeds << " seeds, " << config.nodes
            << " nodes, r=" << config.replication << " (f=" << config.f()
            << "), fault budget " << config.effective_budget()
            << ", equivocators " << config.equivocators << "\n";

  // Campaign-wide observability sinks: per-seed registries merge (counters
  // and histogram buckets add), per-seed traces concatenate behind a
  // campaign seed marker. Both stay disabled (and free) unless requested.
  obs::MetricsRegistry campaign_metrics(!metrics_out.empty());
  sim::Trace campaign_trace(!trace_out.empty());
  obs::SpanRecorder campaign_spans;
  obs::MetricsRegistry* metrics_sink =
      metrics_out.empty() ? nullptr : &campaign_metrics;
  sim::Trace* trace_sink = trace_out.empty() ? nullptr : &campaign_trace;
  obs::SpanRecorder* spans_sink = spans_out.empty() ? nullptr : &campaign_spans;

  std::uint64_t violating_seeds = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_committed = 0;
  std::uint64_t total_fault_events = 0;
  bool reproduced = false;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    ChaosConfig seed_config = config;
    seed_config.seed = seed0 + s;
    sim::Rng rng(seed_config.seed ^ 0x63686170'73656564ull);  // "chaoseed"
    const sim::FaultPlan plan = generate_fault_plan(seed_config, rng);
    ChaosReport report;
    try {
      report = run_plan(seed_config, plan, metrics_sink, trace_sink,
                        /*flight=*/nullptr, spans_sink);
    } catch (const std::exception& e) {
      std::cerr << "seed " << seed_config.seed << " crashed: " << e.what()
                << "\n";
      if (!postmortem_dir.empty()) {
        const std::string pm_path = write_postmortem(
            postmortem_dir, seed_config, plan, sim::FaultPlan());
        if (!pm_path.empty()) {
          std::cout << "  postmortem bundle " << pm_path << "\n";
        }
      }
      return 3;
    }
    total_events += report.events_executed;
    total_committed += static_cast<std::uint64_t>(report.committed);
    total_fault_events += plan.size();
    if (verbose || !report.ok()) {
      std::cout << "seed " << seed_config.seed << ": " << plan.size()
                << " fault events, " << report.committed << "/"
                << seed_config.updates << " committed, "
                << report.violations.size() << " violation(s)\n";
    }
    if (report.ok()) continue;

    ++violating_seeds;
    print_violations(report);

    // Minimal reproducer + replay file.
    std::size_t shrink_runs = 0;
    const sim::FaultPlan minimal =
        shrink_plan(seed_config, plan, &shrink_runs);
    std::cout << "  shrunk " << plan.size() << " -> " << minimal.size()
              << " fault events in " << shrink_runs << " re-runs:\n";
    for (const sim::FaultEvent& event : minimal.events()) {
      std::cout << "    " << event.serialize() << "\n";
    }
    const std::string replay = encode_replay(seed_config, minimal);
    const std::string path =
        out_dir + "/chaos-seed" + std::to_string(seed_config.seed) +
        ".replay";
    std::ofstream out(path);
    out << replay;
    out.close();

    // The replay file must reproduce the violation byte-for-byte.
    const auto decoded = decode_replay(replay);
    const bool replay_violates =
        decoded.has_value() &&
        !run_plan(decoded->first, decoded->second).violations.empty();
    std::cout << "  replay file " << path
              << (replay_violates ? " reproduces the violation\n"
                                  : " FAILED to reproduce\n");
    if (replay_violates) reproduced = true;
    if (!postmortem_dir.empty()) {
      const std::string pm_path =
          write_postmortem(postmortem_dir, seed_config, plan, minimal);
      if (pm_path.empty()) {
        std::cerr << "  cannot write postmortem bundle in " << postmortem_dir
                  << "\n";
      } else {
        std::cout << "  postmortem bundle " << pm_path << "\n";
      }
    }
    if (expect_violation) break;  // One shrunk reproducer is the goal.
  }

  std::cout << "\ncampaign summary: " << violating_seeds << " of " << seeds
            << " seeds violated invariants; " << total_fault_events
            << " fault events injected, " << total_committed
            << " updates committed, " << total_events
            << " simulation events\n";

  if (!metrics_out.empty()) {
    const obs::Meta meta{
        {"tool", "asachaos"},
        {"seeds", std::to_string(seeds)},
        {"seed0", std::to_string(seed0)},
        {"nodes", std::to_string(config.nodes)},
        {"replication", std::to_string(config.replication)},
        {"violating_seeds", std::to_string(violating_seeds)},
    };
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 2;
    }
    out << obs::write_metrics_json(campaign_metrics, meta);
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 2;
    }
    out << "{\"schema\":\"asa-trace/1\",\"tool\":\"asachaos\",\"seed0\":"
        << seed0 << ",\"seeds\":" << seeds << "}\n";
    campaign_trace.dump_jsonl(out);
    std::cout << "trace written to " << trace_out << " ("
              << campaign_trace.events().size() << " events)\n";
  }
  if (!spans_out.empty()) {
    const obs::Meta meta{
        {"tool", "asachaos"},
        {"seeds", std::to_string(seeds)},
        {"seed0", std::to_string(seed0)},
        {"nodes", std::to_string(config.nodes)},
        {"replication", std::to_string(config.replication)},
    };
    std::ofstream out(spans_out);
    if (!out) {
      std::cerr << "cannot write " << spans_out << "\n";
      return 2;
    }
    out << obs::write_spans_json(campaign_spans, meta);
    std::cout << "spans written to " << spans_out << " ("
              << campaign_spans.spans().size() << " spans)\n";
  }

  if (expect_violation) {
    if (violating_seeds > 0 && reproduced) {
      std::cout << "expected violation found, shrunk and reproduced\n";
      return 0;
    }
    std::cerr << "expected a violation (faults > f) but none "
              << (violating_seeds > 0 ? "reproduced" : "was found") << "\n";
    return 1;
  }
  return violating_seeds == 0 ? 0 : 1;
}
