// The abstract file system layer (paper Fig 1): versioned files over the
// storage services, with the historical record the ASA goals require.
#include <gtest/gtest.h>

#include "asafs/file_system.hpp"

namespace asa_repro::asafs {
namespace {

using storage::AsaCluster;
using storage::Block;
using storage::ClusterConfig;
using storage::block_from;

ClusterConfig config(std::uint64_t seed = 51) {
  ClusterConfig c;
  c.nodes = 12;
  c.replication_factor = 4;
  c.seed = seed;
  return c;
}

TEST(AsaFs, WriteThenReadLatest) {
  AsaCluster cluster(config());
  AsaFileSystem fs(cluster);

  WriteResult wrote;
  fs.write("/docs/readme.txt", block_from("hello world"),
           [&](const WriteResult& r) { wrote = r; });
  cluster.run();
  ASSERT_TRUE(wrote.ok);

  ReadResult read;
  fs.read("/docs/readme.txt", [&](const ReadResult& r) { read = r; });
  cluster.run();
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.contents, block_from("hello world"));
  EXPECT_EQ(read.version_count, 1u);
}

TEST(AsaFs, HistoricalRecordKeepsOldVersions) {
  AsaCluster cluster(config(3));
  AsaFileSystem fs(cluster);

  for (int v = 0; v < 3; ++v) {
    bool ok = false;
    fs.write("/file", block_from("version " + std::to_string(v)),
             [&](const WriteResult& r) { ok = r.ok; });
    cluster.run();
    ASSERT_TRUE(ok) << "version " << v;
  }

  // Latest is v2; every older version remains readable (append-only).
  ReadResult latest;
  fs.read("/file", [&](const ReadResult& r) { latest = r; });
  cluster.run();
  ASSERT_TRUE(latest.ok);
  EXPECT_EQ(latest.contents, block_from("version 2"));
  EXPECT_EQ(latest.version_count, 3u);
  EXPECT_EQ(latest.version_index, 2u);

  for (std::size_t v = 0; v < 3; ++v) {
    ReadResult old;
    fs.read_version("/file", v, [&](const ReadResult& r) { old = r; });
    cluster.run();
    ASSERT_TRUE(old.ok) << "version " << v;
    EXPECT_EQ(old.contents, block_from("version " + std::to_string(v)));
  }
}

TEST(AsaFs, StatReportsVersions) {
  AsaCluster cluster(config(5));
  AsaFileSystem fs(cluster);
  FileInfo info;
  fs.stat("/missing", [&](const FileInfo& i) { info = i; });
  cluster.run();
  EXPECT_FALSE(info.exists);
  EXPECT_EQ(info.version_count, 0u);

  bool ok = false;
  fs.write("/present", block_from("x"), [&](const WriteResult& r) {
    ok = r.ok;
  });
  cluster.run();
  ASSERT_TRUE(ok);
  fs.stat("/present", [&](const FileInfo& i) { info = i; });
  cluster.run();
  EXPECT_TRUE(info.exists);
  EXPECT_EQ(info.version_count, 1u);
  ASSERT_EQ(info.versions.size(), 1u);
  EXPECT_EQ(info.versions[0], storage::Pid::of(block_from("x")));
}

TEST(AsaFs, IndependentPathsIndependentHistories) {
  AsaCluster cluster(config(7));
  AsaFileSystem fs(cluster);
  int ok = 0;
  fs.write("/a", block_from("contents a"),
           [&](const WriteResult& r) { ok += r.ok; });
  fs.write("/b", block_from("contents b"),
           [&](const WriteResult& r) { ok += r.ok; });
  cluster.run();
  ASSERT_EQ(ok, 2);

  ReadResult a, b;
  fs.read("/a", [&](const ReadResult& r) { a = r; });
  fs.read("/b", [&](const ReadResult& r) { b = r; });
  cluster.run();
  EXPECT_EQ(a.contents, block_from("contents a"));
  EXPECT_EQ(b.contents, block_from("contents b"));
  EXPECT_EQ(a.version_count, 1u);
  EXPECT_EQ(b.version_count, 1u);
}

TEST(AsaFs, ReadMissingFileFailsCleanly) {
  AsaCluster cluster(config(9));
  AsaFileSystem fs(cluster);
  ReadResult read;
  bool done = false;
  fs.read("/nothing", [&](const ReadResult& r) {
    read = r;
    done = true;
  });
  cluster.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(read.ok);
  EXPECT_EQ(read.version_count, 0u);
}

TEST(AsaFs, ReadOutOfRangeVersionFails) {
  AsaCluster cluster(config(13));
  AsaFileSystem fs(cluster);
  bool ok = false;
  fs.write("/one", block_from("v0"), [&](const WriteResult& r) {
    ok = r.ok;
  });
  cluster.run();
  ASSERT_TRUE(ok);
  ReadResult read;
  fs.read_version("/one", 5, [&](const ReadResult& r) { read = r; });
  cluster.run();
  EXPECT_FALSE(read.ok);
  EXPECT_EQ(read.version_count, 1u);
}

TEST(AsaFs, SurvivesCorruptReplica) {
  AsaCluster cluster(config(21));
  AsaFileSystem fs(cluster);
  bool ok = false;
  fs.write("/robust", block_from("precious data"),
           [&](const WriteResult& r) { ok = r.ok; });
  cluster.run();
  ASSERT_TRUE(ok);

  // One replica holder starts lying; the hash check routes around it.
  const storage::Pid pid = storage::Pid::of(block_from("precious data"));
  cluster.host_for_key(pid.as_key()).store().set_corrupt(true);

  ReadResult read;
  fs.read("/robust", [&](const ReadResult& r) { read = r; });
  cluster.run();
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.contents, block_from("precious data"));
}

TEST(AsaFs, ForeignVersionWithoutPidIndexFailsCleanly) {
  // A version committed by ANOTHER client's file system is visible in the
  // history but this instance lacks the payload->PID mapping needed to
  // fetch the block; the read must fail without crashing (version_count
  // still reported).
  AsaCluster cluster(config(33));
  AsaFileSystem mine(cluster);

  // A foreign writer appends directly through the version-history service.
  const storage::Guid guid = AsaFileSystem::guid_for("/shared");
  bool committed = false;
  cluster.version_history().append(
      guid, storage::Pid::of(block_from("foreign bytes")),
      [&](const commit::CommitResult& r) { committed = r.committed; });
  cluster.run();
  ASSERT_TRUE(committed);

  ReadResult read;
  bool done = false;
  mine.read("/shared", [&](const ReadResult& r) {
    read = r;
    done = true;
  });
  cluster.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(read.ok);
  EXPECT_EQ(read.version_count, 1u);
}

TEST(AsaFs, ManyFilesManyVersionsStressRoundTrip) {
  AsaCluster cluster(config(37));
  AsaFileSystem fs(cluster);
  const int kFiles = 6;
  const int kVersions = 4;
  int ok = 0;
  for (int v = 0; v < kVersions; ++v) {
    for (int f = 0; f < kFiles; ++f) {
      fs.write("/stress/" + std::to_string(f),
               block_from(std::to_string(f) + ":" + std::to_string(v)),
               [&](const WriteResult& r) { ok += r.ok ? 1 : 0; });
    }
    cluster.run();
  }
  ASSERT_EQ(ok, kFiles * kVersions);
  // Spot-check every file's full history.
  for (int f = 0; f < kFiles; ++f) {
    for (int v = 0; v < kVersions; ++v) {
      ReadResult read;
      fs.read_version("/stress/" + std::to_string(f), v,
                      [&](const ReadResult& r) { read = r; });
      cluster.run();
      ASSERT_TRUE(read.ok) << f << " v" << v;
      EXPECT_EQ(read.contents,
                block_from(std::to_string(f) + ":" + std::to_string(v)));
    }
  }
}

TEST(AsaFs, GuidDerivationIsStableAndDistinct) {
  EXPECT_EQ(AsaFileSystem::guid_for("/x"), AsaFileSystem::guid_for("/x"));
  EXPECT_NE(AsaFileSystem::guid_for("/x"), AsaFileSystem::guid_for("/y"));
}

}  // namespace
}  // namespace asa_repro::asafs
