// Equivalent-state merging: hand-built machines exercising the cases the
// paper's step 4 must handle, including cyclic equivalences that a single
// greedy pass cannot discover.
#include <gtest/gtest.h>

#include "core/equivalence.hpp"
#include "core/minimize.hpp"

namespace asa_repro::fsm {
namespace {

/// Convenience builder for small machines with one message vocabulary.
StateMachine make_machine(std::vector<std::string> messages,
                          std::vector<State> states, StateId start,
                          StateId finish = kNoState) {
  return StateMachine(std::move(messages), std::move(states), start, finish);
}

State state(std::string name, std::vector<Transition> transitions,
            bool is_final = false) {
  State s;
  s.name = std::move(name);
  s.transitions = std::move(transitions);
  s.is_final = is_final;
  return s;
}

Transition tr(MessageId m, StateId target, ActionList actions = {}) {
  Transition t;
  t.message = m;
  t.actions = std::move(actions);
  t.target = target;
  return t;
}

TEST(Minimize, IdenticalSuccessorsMerge) {
  // s1 and s2 both go to s3 on message 0 with the same action.
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 1)}),
          state("s1", {tr(0, 2, {"x"})}),
          state("s3", {}, true),
          state("s2", {tr(0, 2, {"x"})}),
      },
      0);
  // s1 (index 1) and s2 (index 3) behave identically (same action, same
  // destination); minimize merges them even though s2 is unreachable —
  // step 4 operates on whatever states are present.
  const StateMachine min = minimize(m);
  EXPECT_EQ(min.state_count(), 3u);
  EXPECT_TRUE(trace_equivalent(m, min));
}

TEST(Minimize, DifferentActionsDoNotMerge) {
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 2, {"x"})}),
          state("s1", {tr(0, 2, {"y"})}),
          state("s2", {}, true),
      },
      0);
  const StateMachine min = minimize(m);
  EXPECT_EQ(min.state_count(), 3u);
}

TEST(Minimize, ActionOrderMatters) {
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 2, {"x", "y"})}),
          state("s1", {tr(0, 2, {"y", "x"})}),
          state("s2", {}, true),
      },
      0);
  EXPECT_EQ(minimize(m).state_count(), 3u);
}

TEST(Minimize, ApplicabilityDistinguishes) {
  // s0 accepts message 1, s1 does not: they must not merge even though
  // their message-0 rows agree.
  const StateMachine m = make_machine(
      {"a", "b"},
      {
          state("s0", {tr(0, 2), tr(1, 2)}),
          state("s1", {tr(0, 2)}),
          state("s2", {}, true),
      },
      0);
  EXPECT_EQ(minimize(m).state_count(), 3u);
}

TEST(Minimize, CyclicEquivalenceMerges) {
  // Two disjoint self-loop states with identical behaviour: bisimilar, but
  // a greedy identical-successor pass cannot merge them because each points
  // at itself. Refinement must.
  const StateMachine m = make_machine(
      {"a"},
      {
          state("p", {tr(0, 0, {"x"})}),
          state("q", {tr(0, 1, {"x"})}),
      },
      0);
  const StateMachine min = minimize(m);
  EXPECT_EQ(min.state_count(), 1u);
  // The single remaining state self-loops.
  EXPECT_EQ(min.state(0).transitions.size(), 1u);
  EXPECT_EQ(min.state(0).transitions[0].target, 0u);

  // Demonstrate the greedy gap: one pass does not merge them.
  EXPECT_EQ(merge_once(m).state_count(), 2u);
}

TEST(Minimize, TwoStateCycleMergesWithEquivalentPair) {
  // a<->b and c<->d with identical labels collapse to a single 2-cycle
  // (or smaller).
  const StateMachine m = make_machine(
      {"m"},
      {
          state("a", {tr(0, 1, {"go"})}),
          state("b", {tr(0, 0)}),
          state("c", {tr(0, 3, {"go"})}),
          state("d", {tr(0, 2)}),
      },
      0);
  const StateMachine min = minimize(m);
  EXPECT_EQ(min.state_count(), 2u);
  EXPECT_TRUE(trace_equivalent(m, min));
}

TEST(Minimize, FinalityDistinguishes) {
  // Identical (empty) transition sets but different finality: no merge.
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 1)}),
          state("dead_end", {}),
          state("finish", {}, true),
      },
      0, 2);
  EXPECT_EQ(minimize(m).state_count(), 3u);
}

TEST(Minimize, AllFinalStatesMergeIntoOne) {
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 1)}),
          state("f1", {}, true),
          state("f2", {}, true),
          state("f3", {}, true),
      },
      0);
  const StateMachine min = minimize(m);
  EXPECT_EQ(min.state_count(), 2u);
  ASSERT_NE(min.finish(), kNoState);
  EXPECT_TRUE(min.state(min.finish()).is_final);
}

TEST(Minimize, KeepsRepresentativeNameAndRecordsMembers) {
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 1)}),
          state("first", {}, true),
          state("second", {}, true),
      },
      0);
  const StateMachine min = minimize(m);
  const auto id = min.state_id("first");
  ASSERT_TRUE(id.has_value());
  // The merged state's annotations mention how many states it represents.
  bool found = false;
  for (const auto& a : min.state(*id).annotations) {
    if (a.find("Represents 2 equivalent states") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Minimize, StateClassMappingIsConsistent) {
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 1)}),
          state("f1", {}, true),
          state("f2", {}, true),
      },
      0);
  std::vector<StateId> cls;
  const StateMachine min = minimize(m, &cls);
  ASSERT_EQ(cls.size(), 3u);
  EXPECT_EQ(cls[1], cls[2]);           // The two finals share a class.
  EXPECT_NE(cls[0], cls[1]);
  EXPECT_EQ(min.start(), cls[0]);
}

TEST(Minimize, StartStatePreserved) {
  const StateMachine m = make_machine(
      {"a"},
      {
          state("s0", {tr(0, 1, {"x"})}),
          state("s1", {}, true),
          state("s2", {tr(0, 1, {"x"})}),
      },
      2);  // Start at s2, which merges with s0.
  const StateMachine min = minimize(m);
  EXPECT_EQ(min.state_count(), 2u);
  EXPECT_EQ(min.state(min.start()).name, "s0");  // Representative name.
  EXPECT_TRUE(trace_equivalent(m, min));
}

TEST(Minimize, EmptyMachine) {
  const StateMachine m = make_machine({"a"}, {}, kNoState);
  EXPECT_EQ(minimize(m).state_count(), 0u);
}

TEST(Minimize, Idempotent) {
  const StateMachine m = make_machine(
      {"m"},
      {
          state("a", {tr(0, 1, {"go"})}),
          state("b", {tr(0, 0)}),
          state("c", {tr(0, 3, {"go"})}),
          state("d", {tr(0, 2)}),
      },
      0);
  const StateMachine once = minimize(m);
  const StateMachine twice = minimize(once);
  EXPECT_EQ(once.state_count(), twice.state_count());
}

}  // namespace
}  // namespace asa_repro::fsm
