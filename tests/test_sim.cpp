// Discrete-event simulation substrate: scheduler ordering and cancellation,
// network latency/drop/partition behaviour, deterministic RNG, tracing.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/sequence.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace asa_repro::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, TiesBreakByScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  Time fired_at = 0;
  sched.schedule_at(50, [&] {
    sched.schedule_after(25, [&] { fired_at = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  const auto id = sched.schedule_at(10, [&] { fired = true; });
  sched.cancel(id);
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelUnknownIdIsNoOp) {
  Scheduler sched;
  sched.cancel(424242);
  bool fired = false;
  sched.schedule_at(1, [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  std::vector<Time> fired;
  for (Time t : {10u, 20u, 30u, 40u}) {
    sched.schedule_at(t, [&fired, &sched] { fired.push_back(sched.now()); });
  }
  EXPECT_EQ(sched.run_until(25), 2u);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(sched.pending(), 2u);
  sched.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) sched.schedule_after(5, tick);
  };
  sched.schedule_at(0, tick);
  sched.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sched.now(), 45u);
}

TEST(Scheduler, MaxEventsBoundsRunawayLoops) {
  Scheduler sched;
  std::function<void()> forever = [&] { sched.schedule_after(1, forever); };
  sched.schedule_at(0, forever);
  EXPECT_EQ(sched.run(100), 100u);
}

// ---- RNG. ----

TEST(Rng, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng reference(42);
  (void)reference();  // Parent consumed one value to fork.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child() == reference()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---- Network. ----

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(sched_, Rng(5), LatencyModel{100, 500}) {}
  Scheduler sched_;
  Network network_;
};

TEST_F(NetworkTest, DeliversWithinLatencyBounds) {
  Time delivered_at = 0;
  network_.attach(2, [&](NodeAddr from, const std::string& payload) {
    EXPECT_EQ(from, 1u);
    EXPECT_EQ(payload, "hello");
    delivered_at = sched_.now();
  });
  network_.send(1, 2, "hello");
  sched_.run();
  EXPECT_GE(delivered_at, 100u);
  EXPECT_LE(delivered_at, 500u);
  EXPECT_EQ(network_.stats().delivered, 1u);
}

TEST_F(NetworkTest, MessagesToDetachedNodeDropped) {
  network_.send(1, 9, "into the void");
  sched_.run();
  EXPECT_EQ(network_.stats().to_dead_node, 1u);
  EXPECT_EQ(network_.stats().delivered, 0u);
}

TEST_F(NetworkTest, DetachStopsDelivery) {
  int received = 0;
  network_.attach(2, [&](NodeAddr, const std::string&) { ++received; });
  network_.send(1, 2, "a");
  sched_.run();
  network_.detach(2);
  network_.send(1, 2, "b");
  sched_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, DropProbabilityLosesRoughlyThatFraction) {
  int received = 0;
  network_.attach(2, [&](NodeAddr, const std::string&) { ++received; });
  network_.set_drop_probability(0.5);
  for (int i = 0; i < 1000; ++i) network_.send(1, 2, "x");
  sched_.run();
  EXPECT_GT(received, 350);
  EXPECT_LT(received, 650);
  EXPECT_EQ(network_.stats().dropped + network_.stats().delivered, 1000u);
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  int received = 0;
  network_.attach(2, [&](NodeAddr, const std::string&) { ++received; });
  network_.set_duplicate_probability(1.0);
  for (int i = 0; i < 50; ++i) network_.send(1, 2, "x");
  sched_.run();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(network_.stats().duplicated, 50u);
}

TEST_F(NetworkTest, PartitionIsDirected) {
  int a_got = 0, b_got = 0;
  network_.attach(1, [&](NodeAddr, const std::string&) { ++a_got; });
  network_.attach(2, [&](NodeAddr, const std::string&) { ++b_got; });
  network_.partition(1, 2);
  network_.send(1, 2, "lost");
  network_.send(2, 1, "arrives");
  sched_.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(network_.stats().partitioned, 1u);
}

TEST_F(NetworkTest, HealRestoresDelivery) {
  int received = 0;
  network_.attach(2, [&](NodeAddr, const std::string&) { ++received; });
  network_.partition_bidirectional(1, 2);
  network_.send(1, 2, "lost");
  network_.heal(1, 2);
  network_.send(1, 2, "arrives");
  sched_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, ReorderingIsPossible) {
  // With per-message latency sampling, two messages can arrive out of send
  // order; check it actually happens over many trials.
  std::vector<int> arrivals;
  network_.attach(2, [&](NodeAddr, const std::string& p) {
    arrivals.push_back(std::stoi(p));
  });
  for (int i = 0; i < 100; ++i) network_.send(1, 2, std::to_string(i));
  sched_.run();
  EXPECT_EQ(arrivals.size(), 100u);
  EXPECT_FALSE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

// ---- Trace. ----

TEST(Trace, RecordsAndCounts) {
  Trace trace;
  trace.record(10, 1, "commit", "guid=5");
  trace.record(20, 2, "abort", "guid=5");
  trace.record(30, 1, "commit", "guid=6");
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.count("commit"), 2u);
  EXPECT_EQ(trace.count("abort"), 1u);
  const auto node1 = trace.filter(
      [](const TraceEvent& e) { return e.node == 1; });
  EXPECT_EQ(node1.size(), 2u);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace(false);
  trace.record(1, 1, "x", "y");
  EXPECT_TRUE(trace.events().empty());
}

TEST(Sequence, RendersArrowsAndNotes) {
  Trace trace;
  trace.record(10, 1, "recv", "vote from=2 update=7");
  trace.record(20, 1, "recv", "commit from=3 update=7");
  trace.record(30, 1, "commit", "guid=5 update=7");
  trace.record(40, 2, "abort", "guid=5 update=9");
  const std::string mermaid = render_sequence_mermaid(trace);
  EXPECT_EQ(mermaid.find("sequenceDiagram"), 0u);
  EXPECT_NE(mermaid.find("participant node1"), std::string::npos);
  EXPECT_NE(mermaid.find("participant node3"), std::string::npos);
  EXPECT_NE(mermaid.find("node2->>node1: vote u7"), std::string::npos);
  EXPECT_NE(mermaid.find("node3->>node1: commit u7"), std::string::npos);
  EXPECT_NE(mermaid.find("Note over node1: commit u7"), std::string::npos);
  EXPECT_NE(mermaid.find("Note over node2: abort u9"), std::string::npos);
}

TEST(Sequence, TruncatesAtMaxEvents) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.record(i, 0, "recv", "vote from=1 update=1");
  }
  SequenceOptions options;
  options.max_events = 3;
  const std::string mermaid = render_sequence_mermaid(trace, options);
  EXPECT_NE(mermaid.find("(truncated)"), std::string::npos);
  std::size_t arrows = 0;
  for (std::size_t pos = 0;
       (pos = mermaid.find("->>", pos)) != std::string::npos; ++pos) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 3u);
}

TEST(Sequence, IgnoresUnparseableEvents) {
  Trace trace;
  trace.record(1, 0, "recv", "garbage with no fields");
  trace.record(2, 0, "instance", "guid=1 update=2 created");
  const std::string mermaid = render_sequence_mermaid(trace);
  EXPECT_EQ(mermaid.find("->>"), std::string::npos);
}

TEST(Trace, DumpFormatsLines) {
  Trace trace;
  trace.record(10, 3, "commit", "guid=9");
  std::ostringstream out;
  trace.dump(out);
  EXPECT_EQ(out.str(), "[10us] node 3 commit: guid=9\n");
}

TEST(Scheduler, CancelledIdDoesNotAffectLaterEvents) {
  // The cancel set is consumed when the cancelled event's slot fires;
  // event ids are never reused, so cancelling one event must never
  // suppress any other, no matter how many events run afterwards.
  Scheduler sched;
  std::vector<int> fired;
  const auto id = sched.schedule_at(10, [&] { fired.push_back(0); });
  sched.cancel(id);
  for (int i = 1; i <= 100; ++i) {
    sched.schedule_at(static_cast<Time>(10 + i), [&fired, i] {
      fired.push_back(i);
    });
  }
  sched.run();
  ASSERT_EQ(fired.size(), 100u);
  EXPECT_EQ(fired.front(), 1);
  EXPECT_EQ(fired.back(), 100);
}

TEST(Scheduler, CancelFromWithinEvent) {
  Scheduler sched;
  bool fired = false;
  const auto victim = sched.schedule_at(20, [&] { fired = true; });
  sched.schedule_at(10, [&] { sched.cancel(victim); });
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Network, PendingRouteThrowsOutOfRange) {
  Scheduler sched;
  Network net(sched, Rng(1));
  net.set_manual_mode(true);
  net.attach(1, [](NodeAddr, const std::string&) {});
  EXPECT_THROW((void)net.pending_route(0), std::out_of_range);
  net.send(0, 1, "hello");
  ASSERT_EQ(net.pending_count(), 1u);
  EXPECT_EQ(net.pending_route(0), (std::pair<NodeAddr, NodeAddr>{0, 1}));
  EXPECT_THROW((void)net.pending_route(1), std::out_of_range);
}

// ---- Seed-split substreams. ----

TEST(Rng, DeriveSeedIsPureAndDirectionSensitive) {
  // derive_seed is a pure function: no draw order, no state.
  EXPECT_EQ(Rng::derive_seed(42, 7), Rng::derive_seed(42, 7));
  EXPECT_NE(Rng::derive_seed(42, 7), Rng::derive_seed(42, 8));
  EXPECT_NE(Rng::derive_seed(42, 7), Rng::derive_seed(7, 42));
}

TEST(Rng, SubstreamsAreIndependent) {
  Rng a = Rng::substream(99, 1);
  Rng b = Rng::substream(99, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---- Latency-model validation. ----

TEST(LatencyModelValidation, RejectsMinAboveMax) {
  EXPECT_THROW(validate(LatencyModel{500, 100}), std::invalid_argument);
  Scheduler sched;
  EXPECT_THROW(Network(sched, Rng(1), LatencyModel{500, 100}),
               std::invalid_argument);
}

TEST(LatencyModelValidation, AcceptsDegenerateButOrderedRange) {
  validate(LatencyModel{100, 100});  // Fixed latency is fine.
  Scheduler sched;
  Network net(sched, Rng(1), LatencyModel{100, 100});
  Time delivered_at = 0;
  net.attach(2, [&](NodeAddr, const std::string&) {
    delivered_at = sched.now();
  });
  net.send(1, 2, "x");
  sched.run();
  EXPECT_EQ(delivered_at, 100u);
}

// ---- Link profiles. ----

TEST(LinkProfiles, NamedClassesResolveAndUnknownRejected) {
  for (const char* name : {"lan", "wan", "sat"}) {
    const auto profile = link_profile(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
    EXPECT_LE(profile->latency.min_latency, profile->latency.max_latency);
  }
  // "default" resets to the network-default behaviour.
  ASSERT_TRUE(link_profile("default").has_value());
  EXPECT_EQ(*link_profile("default"), LinkProfile{});
  EXPECT_FALSE(link_profile("dialup").has_value());
}

TEST(LinkProfiles, InstallRejectsDegenerateProfiles) {
  Scheduler sched;
  Network net(sched, Rng(1));
  LinkProfile bad_latency;
  bad_latency.latency = {900, 100};
  EXPECT_THROW(net.set_link_profile(1, 2, bad_latency),
               std::invalid_argument);
  LinkProfile bad_loss;
  bad_loss.loss_bad = 1.5;
  EXPECT_THROW(net.set_link_profile(1, 2, bad_loss),
               std::invalid_argument);
}

TEST(LinkProfiles, ProfileIsDirectedAndAsymmetric) {
  Scheduler sched;
  Network net(sched, Rng(3), LatencyModel{100, 100});
  LinkProfile slow;
  slow.name = "slow";
  slow.latency = {50'000, 50'000};
  net.set_link_profile(1, 2, slow);
  EXPECT_EQ(net.link_class(1, 2), "slow");
  EXPECT_EQ(net.link_class(2, 1), "default");

  std::map<NodeAddr, Time> delivered_at;
  net.attach(1, [&](NodeAddr, const std::string&) {
    delivered_at[1] = sched.now();
  });
  net.attach(2, [&](NodeAddr, const std::string&) {
    delivered_at[2] = sched.now();
  });
  net.send(1, 2, "slow path");
  net.send(2, 1, "fast path");
  sched.run();
  EXPECT_EQ(delivered_at[2], 50'000u);  // Profiled direction.
  EXPECT_EQ(delivered_at[1], 100u);     // Reverse stays on defaults.

  net.clear_link_profile(1, 2);
  EXPECT_EQ(net.link_class(1, 2), "default");
}

TEST(LinkProfiles, JitterExtendsTheLatencyCeiling) {
  Scheduler sched;
  Network net(sched, Rng(17), LatencyModel{100, 100});
  LinkProfile jittery;
  jittery.latency = {1'000, 1'000};
  jittery.jitter = 9'000;
  net.set_link_profile(1, 2, jittery);
  std::vector<Time> arrivals;
  net.attach(2, [&](NodeAddr, const std::string&) {
    arrivals.push_back(sched.now());
  });
  for (int i = 0; i < 200; ++i) {
    sched.schedule_at(static_cast<Time>(i) * 20'000, [&net] {
      net.send(1, 2, "j");
    });
  }
  sched.run();
  ASSERT_EQ(arrivals.size(), 200u);
  Time max_latency = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Time latency = arrivals[i] - static_cast<Time>(i) * 20'000;
    EXPECT_GE(latency, 1'000u);
    EXPECT_LE(latency, 10'000u);
    max_latency = std::max(max_latency, latency);
  }
  EXPECT_GT(max_latency, 1'000u);  // Jitter actually fired.
}

TEST(LinkProfiles, GilbertElliottLossIsBursty) {
  Scheduler sched;
  Network net(sched, Rng(29), LatencyModel{100, 100});
  LinkProfile bursty;
  bursty.loss_good = 0.0;  // All loss comes from the bad state.
  bursty.loss_bad = 1.0;
  bursty.p_good_to_bad = 0.05;
  bursty.p_bad_to_good = 0.25;
  net.set_link_profile(1, 2, bursty);
  int received = 0;
  net.attach(2, [&](NodeAddr, const std::string&) { ++received; });
  for (int i = 0; i < 2000; ++i) net.send(1, 2, "x");
  sched.run();
  // Stationary bad-state share = 0.05/(0.05+0.25) ~ 17%; loss must be
  // clearly nonzero, clearly partial, and all attributed to bursts.
  EXPECT_GT(net.stats().burst_dropped, 100u);
  EXPECT_LT(net.stats().burst_dropped, 700u);
  EXPECT_EQ(net.stats().dropped, net.stats().burst_dropped);
  EXPECT_EQ(static_cast<std::uint64_t>(received) + net.stats().dropped,
            2000u);
}

TEST(LinkProfiles, LossGoodDegeneratestoIndependentLoss) {
  Scheduler sched;
  Network net(sched, Rng(31), LatencyModel{100, 100});
  LinkProfile lossy;
  lossy.loss_good = 0.5;
  lossy.loss_bad = 0.5;
  lossy.p_good_to_bad = 0.0;  // Never enters the bad state.
  net.set_link_profile(1, 2, lossy);
  int received = 0;
  net.attach(2, [&](NodeAddr, const std::string&) { ++received; });
  for (int i = 0; i < 1000; ++i) net.send(1, 2, "x");
  sched.run();
  EXPECT_GT(received, 350);
  EXPECT_LT(received, 650);
  EXPECT_EQ(net.stats().burst_dropped, 0u);  // Good-state loss only.
}

TEST(LinkProfiles, PerLinkSubstreamsAreTrafficIndependent) {
  // The same link must see a bit-identical delivery sequence whether or
  // not another link carries traffic — the property that makes joins
  // deterministic (a newcomer's messages never perturb existing links).
  const auto observe = [](bool with_cross_traffic) {
    Scheduler sched;
    Network net(sched, Rng(1234), LatencyModel{100, 5'000});
    std::vector<Time> arrivals;
    net.attach(2, [&](NodeAddr, const std::string&) {
      arrivals.push_back(sched.now());
    });
    net.attach(4, [](NodeAddr, const std::string&) {});
    for (int i = 0; i < 50; ++i) {
      net.send(1, 2, "observed");
      if (with_cross_traffic) net.send(3, 4, "noise");
    }
    sched.run();
    return arrivals;
  };
  EXPECT_EQ(observe(false), observe(true));
}

TEST(LinkProfiles, BadStateIsObservable) {
  Scheduler sched;
  Network net(sched, Rng(7), LatencyModel{100, 100});
  LinkProfile stuck;
  stuck.loss_bad = 1.0;
  stuck.p_good_to_bad = 1.0;  // First message flips to bad...
  stuck.p_bad_to_good = 0.0;  // ...and it never recovers.
  net.set_link_profile(1, 2, stuck);
  EXPECT_FALSE(net.link_in_bad_state(1, 2));
  net.attach(2, [](NodeAddr, const std::string&) {});
  net.send(1, 2, "x");
  sched.run();
  EXPECT_TRUE(net.link_in_bad_state(1, 2));
  EXPECT_EQ(net.stats().burst_dropped, 1u);
  // Installing a fresh profile resets the loss state to good.
  net.set_link_profile(1, 2, stuck);
  EXPECT_FALSE(net.link_in_bad_state(1, 2));
}

TEST(Network, DeliverPendingThrowsOutOfRange) {
  Scheduler sched;
  Network net(sched, Rng(1));
  net.set_manual_mode(true);
  int delivered = 0;
  net.attach(1, [&](NodeAddr, const std::string&) { ++delivered; });
  EXPECT_THROW(net.deliver_pending(0), std::out_of_range);
  net.send(0, 1, "hello");
  EXPECT_THROW(net.deliver_pending(7), std::out_of_range);
  EXPECT_EQ(delivered, 0);  // The failed calls must not consume anything.
  net.deliver_pending(0);
  EXPECT_EQ(delivered, 1);
  EXPECT_THROW(net.deliver_pending(0), std::out_of_range);  // Now empty.
}

}  // namespace
}  // namespace asa_repro::sim
