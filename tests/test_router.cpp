// The KeyRouter abstraction: both implementations must agree on every
// lookup (the framework's "vary the P2P layer without affecting the layers
// above" claim), while exhibiting their own hop-count trade-offs.
#include <gtest/gtest.h>

#include "p2p/router.hpp"

namespace asa_repro::p2p {
namespace {

TEST(Router, ImplementationsAgreeOnOwnership) {
  ChordRing ring;
  ring.build(48);
  ChordRouter chord(ring);
  FullViewRouter full_view(ring.node_ids());
  ASSERT_EQ(chord.node_count(), full_view.node_count());

  for (int i = 0; i < 300; ++i) {
    const NodeId key = NodeId::hash_of("k" + std::to_string(i));
    EXPECT_EQ(chord.route(key), full_view.route(key)) << i;
  }
}

TEST(Router, HopCountTradeOff) {
  ChordRing ring;
  ring.build(64);
  ChordRouter chord(ring);
  FullViewRouter full_view(ring.node_ids());

  double chord_hops = 0;
  for (int i = 0; i < 100; ++i) {
    const NodeId key = NodeId::hash_of("h" + std::to_string(i));
    std::size_t h_chord = 99, h_full = 99;
    (void)chord.route(key, &h_chord);
    (void)full_view.route(key, &h_full);
    EXPECT_EQ(h_full, 0u);  // One-hop: answered locally.
    chord_hops += static_cast<double>(h_chord);
  }
  EXPECT_GT(chord_hops / 100.0, 0.5);  // Chord actually routes.
}

TEST(Router, FullViewTracksMembershipChanges) {
  FullViewRouter router;
  const NodeId a = NodeId::from_uint64(100);
  const NodeId b = NodeId::from_uint64(200);
  router.add_node(a);
  router.add_node(b);
  EXPECT_EQ(router.route(NodeId::from_uint64(150)), b);
  EXPECT_EQ(router.route(NodeId::from_uint64(250)), a);  // Wraps.
  EXPECT_EQ(router.route(NodeId::from_uint64(50)), a);
  router.remove_node(b);
  EXPECT_EQ(router.route(NodeId::from_uint64(150)), a);
  EXPECT_EQ(router.node_count(), 1u);
}

TEST(Router, PolymorphicUse) {
  ChordRing ring;
  ring.build(8);
  ChordRouter chord(ring);
  FullViewRouter full_view(ring.node_ids());
  // A layer written against KeyRouter works with either implementation.
  const auto owner_via = [](const KeyRouter& router, const NodeId& key) {
    return router.route(key);
  };
  const NodeId key = NodeId::hash_of("poly");
  EXPECT_EQ(owner_via(chord, key), owner_via(full_view, key));
}

}  // namespace
}  // namespace asa_repro::p2p
