// Source-code rendering (Fig 16/17/19) and the generate -> compile ->
// dlopen -> bind pipeline of section 4.3, including behavioural equivalence
// of the compiled machine against the interpreter on random walks.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "commit/commit_model.hpp"
#include "core/dynamic_loader.hpp"
#include "core/interpreter.hpp"
#include "core/render/code_renderer.hpp"
#include "sim/rng.hpp"

namespace asa_repro::fsm {
namespace {

StateMachine commit_machine(std::uint32_t r) {
  return commit::CommitModel(r).generate_state_machine();
}

TEST(CodeRenderer, MethodStyleShape) {
  const StateMachine machine = commit_machine(4);
  CodeGenOptions options;
  options.class_name = "CommitFsmR4";
  options.namespace_name = "gen";
  options.base_class = "asa_repro::commit::CommitActions";
  options.includes = {"commit/actions.hpp"};
  const std::string code = CodeRenderer(options).render(machine);

  // The Fig 16 shape: handler per message, switch over states, action
  // methods on phase transitions, setState on every branch.
  EXPECT_NE(code.find("class CommitFsmR4 : public "
                      "asa_repro::commit::CommitActions {"),
            std::string::npos);
  EXPECT_NE(code.find("void receiveUpdate() "), std::string::npos);
  EXPECT_NE(code.find("void receiveVote() "), std::string::npos);
  EXPECT_NE(code.find("void receiveNotFree() "), std::string::npos);
  EXPECT_NE(code.find("switch (state_) "), std::string::npos);
  EXPECT_NE(code.find("sendCommit();"), std::string::npos);
  EXPECT_NE(code.find("sendNotFree();"), std::string::npos);
  EXPECT_NE(code.find("setState(State::"), std::string::npos);
  EXPECT_NE(code.find("case State::S_T_2_F_0_F_F_F: "), std::string::npos);
  EXPECT_NE(code.find("#include \"commit/actions.hpp\""), std::string::npos);
  EXPECT_NE(code.find("namespace gen {"), std::string::npos);
  // Commentary included (paper: commentary "is also included in the
  // generated code").
  EXPECT_NE(code.find("// vote threshold (3) reached"), std::string::npos);
  // Default case documents inapplicable messages.
  EXPECT_NE(code.find("break;  // Message not applicable in this state."),
            std::string::npos);
}

TEST(CodeRenderer, StateEnumCoversAllStates) {
  const StateMachine machine = commit_machine(4);
  const std::string code = CodeRenderer().render(machine);
  EXPECT_NE(code.find("kStateCount = 33;"), std::string::npos);
  for (const State& s : machine.states()) {
    EXPECT_NE(code.find(CodeRenderer::state_identifier(s)),
              std::string::npos)
        << s.name;
  }
}

TEST(CodeRenderer, SinkStyleEmitsActionStrings) {
  const StateMachine machine = commit_machine(4);
  CodeGenOptions options;
  options.action_style = CodeGenOptions::ActionStyle::kSink;
  options.base_class = "asa_repro::fsm::DynamicFsmBase";
  options.implement_api = true;
  options.emit_factory = true;
  options.includes = {"core/generated_api.hpp"};
  const std::string code = CodeRenderer(options).render(machine);
  EXPECT_NE(code.find("emit(\"vote\");"), std::string::npos);
  EXPECT_NE(code.find("emit(\"not_free\");"), std::string::npos);
  EXPECT_EQ(code.find("sendVote();"), std::string::npos);
  EXPECT_NE(code.find("void receive(std::uint32_t m) override "),
            std::string::npos);
  EXPECT_NE(code.find("extern \"C\" asa_repro::fsm::GeneratedFsmApi* "
                      "asa_create_fsm() "),
            std::string::npos);
}

TEST(CodeRenderer, NameHelpers) {
  EXPECT_EQ(CodeRenderer::handler_name("not_free"), "receiveNotFree");
  EXPECT_EQ(CodeRenderer::action_method_name("vote"), "sendVote");
  State s;
  s.name = "T/2/F/0/F/F/F";
  EXPECT_EQ(CodeRenderer::state_identifier(s), "S_T_2_F_0_F_F_F");
}

TEST(CodeRenderer, DeterministicOutput) {
  const StateMachine machine = commit_machine(4);
  const std::string a = CodeRenderer().render(machine);
  const std::string b = CodeRenderer().render(machine);
  EXPECT_EQ(a, b);
}

// ---- Compile, load, bind (section 4.3) and cross-check behaviour. ----

class CompiledFsm : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  static std::string repo_src_dir() {
    // Tests run from the build tree; headers live under <repo>/src. CMake
    // compiles tests with the repo root include path baked in; recover it
    // from this source file's location.
    return std::string(ASA_SRC_DIR);
  }
};

TEST_P(CompiledFsm, MatchesInterpreterOnRandomWalks) {
  const std::uint32_t r = GetParam();
  const StateMachine machine = commit_machine(r);

  CodeGenOptions options;
  options.class_name = "GeneratedCommit";
  options.namespace_name = "gen";
  options.base_class = "asa_repro::fsm::DynamicFsmBase";
  options.action_style = CodeGenOptions::ActionStyle::kSink;
  options.implement_api = true;
  options.emit_factory = true;
  options.includes = {"core/generated_api.hpp"};
  const std::string source = CodeRenderer(options).render(machine);

  DynamicCompiler::Options copts;
  copts.include_dir = repo_src_dir();
  DynamicCompiler compiler(copts);
  if (!compiler.available()) {
    GTEST_SKIP() << "no C++ compiler on this host";
  }
  DynamicCompiler::Result result = compiler.compile_and_load(source);
  ASSERT_TRUE(result.fsm.has_value()) << result.error;
  GeneratedFsmApi& compiled = result.fsm->machine();

  std::vector<std::string> compiled_actions;
  compiled.set_action_sink(
      [](void* ctx, const char* action) {
        static_cast<std::vector<std::string>*>(ctx)->push_back(action);
      },
      &compiled_actions);

  sim::Rng rng(1234 + r);
  for (int walk = 0; walk < 50; ++walk) {
    compiled.reset();
    FsmInstance interp(machine);
    for (int step = 0; step < 200; ++step) {
      const auto m =
          static_cast<MessageId>(rng.below(machine.messages().size()));
      compiled_actions.clear();
      compiled.receive(m);
      const Transition* t = interp.deliver(m);
      const std::vector<std::string> expected =
          t == nullptr ? std::vector<std::string>{} : t->actions;
      ASSERT_EQ(compiled_actions, expected)
          << "walk " << walk << " step " << step;
      ASSERT_STREQ(compiled.state_name(), interp.state_name().c_str());
      ASSERT_EQ(compiled.finished(), interp.finished());
      if (interp.finished()) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, CompiledFsm,
                         ::testing::Values(2u, 4u, 7u));

TEST(DynamicCompiler, ReportsCompileErrors) {
  DynamicCompiler compiler;
  if (!compiler.available()) GTEST_SKIP();
  const auto result = compiler.compile_and_load("this is not C++");
  EXPECT_FALSE(result.fsm.has_value());
  EXPECT_NE(result.error.find("compilation failed"), std::string::npos);
}

TEST(DynamicCompiler, ReportsMissingFactory) {
  DynamicCompiler compiler;
  if (!compiler.available()) GTEST_SKIP();
  const auto result = compiler.compile_and_load("int x = 1;");
  EXPECT_FALSE(result.fsm.has_value());
  EXPECT_NE(result.error.find("factory symbol"), std::string::npos);
}

}  // namespace
}  // namespace asa_repro::fsm
