// The generic generation engine, exercised through a small toy model that
// is independent of the commit protocol (the engine must be reusable for
// "other problems", paper section 5.1).
#include <gtest/gtest.h>

#include "core/abstract_model.hpp"
#include "core/equivalence.hpp"

namespace asa_repro::fsm {
namespace {

/// Toy "message counting" model: count inc messages up to a bound; a fin
/// message is accepted once count reaches a threshold and completes the
/// machine with a "celebrate" action.
class CounterModel : public AbstractModel {
 public:
  CounterModel(std::uint32_t max, std::uint32_t threshold)
      : max_(max), threshold_(threshold) {
    init_abstract_model(
        StateSpace({int_component("count", max), boolean_component("done")}),
        {"inc", "fin"});
  }

  [[nodiscard]] StateVector start_state() const override { return {0, 0}; }

  [[nodiscard]] bool is_final(const StateVector& s) const override {
    return s[1] != 0;
  }

  [[nodiscard]] std::optional<Reaction> react(
      const StateVector& s, MessageId m) const override {
    if (m == 0) {  // inc
      if (s[0] >= max_) return std::nullopt;
      Reaction r;
      r.target = {s[0] + 1, s[1]};
      r.annotations = {"count incremented"};
      return r;
    }
    // fin
    if (s[0] < threshold_) return std::nullopt;
    Reaction r;
    r.target = {s[0], 1};
    r.actions = {"celebrate"};
    return r;
  }

  [[nodiscard]] std::vector<std::string> describe_state(
      const StateVector& s) const override {
    return {"count is " + std::to_string(s[0])};
  }

 private:
  std::uint32_t max_;
  std::uint32_t threshold_;
};

TEST(AbstractModel, CounterCounts) {
  CounterModel model(5, 3);
  GenerationReport report;
  const StateMachine machine = model.generate_state_machine({}, &report);
  // 6 counts * 2 done-flags possible.
  EXPECT_EQ(report.initial_states, 12u);
  // Reachable: counts 0..5 live, plus finals at counts 3..5.
  EXPECT_EQ(report.reachable_states, 9u);
  // Finals merge into one; live states 3..4 differ only in remaining
  // headroom... they do differ (3 can still inc twice, 5 cannot inc), so
  // live states remain distinct: 6 live + 1 final.
  EXPECT_EQ(report.final_states, 7u);
  EXPECT_EQ(machine.state_count(), 7u);
}

TEST(AbstractModel, StartAndFinishWiredUp) {
  CounterModel model(5, 3);
  const StateMachine machine = model.generate_state_machine();
  EXPECT_EQ(machine.state(machine.start()).name, "0/F");
  ASSERT_NE(machine.finish(), kNoState);
  EXPECT_TRUE(machine.state(machine.finish()).is_final);
}

TEST(AbstractModel, AnnotationsFlowIntoArtefacts) {
  CounterModel model(3, 1);
  const StateMachine machine = model.generate_state_machine();
  const State& start = machine.state(machine.start());
  ASSERT_FALSE(start.annotations.empty());
  EXPECT_EQ(start.annotations[0], "count is 0");
  const Transition* inc = start.transition(0);
  ASSERT_NE(inc, nullptr);
  ASSERT_FALSE(inc->annotations.empty());
  EXPECT_EQ(inc->annotations[0], "count incremented");
}

TEST(AbstractModel, AnnotateOptionSuppressesCommentary) {
  CounterModel model(3, 1);
  GenerationOptions options;
  options.annotate = false;
  const StateMachine machine = model.generate_state_machine(options);
  for (const State& s : machine.states()) {
    EXPECT_TRUE(s.annotations.empty());
    for (const Transition& t : s.transitions) {
      EXPECT_TRUE(t.annotations.empty());
    }
  }
}

TEST(AbstractModel, NoPruneKeepsEverything) {
  CounterModel model(5, 3);
  GenerationOptions options;
  options.prune_unreachable = false;
  options.merge_equivalent = false;
  GenerationReport report;
  const StateMachine machine = model.generate_state_machine(options, &report);
  EXPECT_EQ(machine.state_count(), 12u);
  EXPECT_EQ(report.final_states, 12u);
}

TEST(AbstractModel, PruneWithoutMerge) {
  CounterModel model(5, 3);
  GenerationOptions options;
  options.merge_equivalent = false;
  GenerationReport report;
  const StateMachine machine = model.generate_state_machine(options, &report);
  EXPECT_EQ(machine.state_count(), 9u);
  // Unmerged machine is trace-equivalent to the merged one.
  const StateMachine merged = model.generate_state_machine();
  EXPECT_TRUE(trace_equivalent(machine, merged));
}

TEST(AbstractModel, FinalStatesHaveNoTransitions) {
  CounterModel model(5, 3);
  const StateMachine machine = model.generate_state_machine();
  for (const State& s : machine.states()) {
    if (s.is_final) {
      EXPECT_TRUE(s.transitions.empty());
    }
  }
}

TEST(AbstractModel, ReportTimesPopulated) {
  CounterModel model(5, 3);
  GenerationReport report;
  (void)model.generate_state_machine({}, &report);
  EXPECT_GE(report.total_time().count(), 0);
  EXPECT_EQ(report.total_time(),
            report.enumerate_time + report.transition_time +
                report.prune_time + report.merge_time);
}

TEST(AbstractModel, UninitialisedModelThrows) {
  class Broken : public AbstractModel {
   public:
    [[nodiscard]] StateVector start_state() const override { return {}; }
    [[nodiscard]] bool is_final(const StateVector&) const override {
      return false;
    }
    [[nodiscard]] std::optional<Reaction> react(
        const StateVector&, MessageId) const override {
      return std::nullopt;
    }
  };
  Broken broken;
  EXPECT_THROW((void)broken.generate_state_machine(), std::logic_error);
}

TEST(AbstractModel, OutOfRangeTargetThrows) {
  class Escapes : public AbstractModel {
   public:
    Escapes() {
      init_abstract_model(StateSpace({int_component("n", 2)}), {"go"});
    }
    [[nodiscard]] StateVector start_state() const override { return {0}; }
    [[nodiscard]] bool is_final(const StateVector&) const override {
      return false;
    }
    [[nodiscard]] std::optional<Reaction> react(
        const StateVector&, MessageId) const override {
      Reaction r;
      r.target = {7};  // Outside the component bound.
      return r;
    }
  };
  Escapes model;
  EXPECT_THROW((void)model.generate_state_machine(), std::logic_error);
}

}  // namespace
}  // namespace asa_repro::fsm
