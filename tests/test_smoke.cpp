// Build-pipeline smoke test: the headline result of the reproduction.
// Table 1, row 1: r=4 gives 512 initial states, 48 after pruning, 33 final.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"

namespace asa_repro {
namespace {

TEST(Smoke, Table1Row1) {
  commit::CommitModel model(4);
  fsm::GenerationReport report;
  const fsm::StateMachine machine =
      model.generate_state_machine({}, &report);
  EXPECT_EQ(report.initial_states, 512u);
  EXPECT_EQ(report.reachable_states, 48u);
  EXPECT_EQ(report.final_states, 33u);
  EXPECT_EQ(machine.state_count(), 33u);
}

}  // namespace
}  // namespace asa_repro
