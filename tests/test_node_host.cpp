// The NodeHost frame mux and storage data-plane: PUT validation, GET
// replies, history serving from the commit peer, and crash behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "commit/machine_cache.hpp"
#include "storage/node_host.hpp"

namespace asa_repro::storage {
namespace {

struct HostHarness {
  HostHarness()
      : machine(cache.machine_for(4)),
        network(sched, sim::Rng(4), sim::LatencyModel{100, 100}),
        host(network, 0, machine) {
    network.attach(50, [this](sim::NodeAddr, const std::string& data) {
      if (const auto f = StorageFrame::parse(data); f.has_value()) {
        storage_replies.push_back(*f);
      }
      if (const auto m = commit::WireMessage::parse(data); m.has_value()) {
        commit_replies.push_back(*m);
      }
    });
  }

  StorageFrame request(StorageFrame frame) {
    const std::size_t before = storage_replies.size();
    network.send(50, 0, frame.serialize());
    sched.run();
    EXPECT_GT(storage_replies.size(), before);
    return storage_replies.back();
  }

  commit::MachineCache cache;
  const fsm::StateMachine& machine;
  sim::Scheduler sched;
  sim::Network network;
  NodeHost host;
  std::vector<StorageFrame> storage_replies;
  std::vector<commit::WireMessage> commit_replies;
};

TEST(NodeHost, PutStoresVerifiedContent) {
  HostHarness h;
  const Block data = block_from("verified put");
  StorageFrame put;
  put.op = StorageFrame::Op::kPut;
  put.ticket = 7;
  put.id = Pid::of(data).digest();
  put.payload = data;
  const StorageFrame ack = h.request(put);
  EXPECT_EQ(ack.op, StorageFrame::Op::kPutAck);
  EXPECT_EQ(ack.ticket, 7u);
  EXPECT_EQ(ack.status, 1u);
  EXPECT_TRUE(h.host.store().holds_intact(Pid::of(data)));
}

TEST(NodeHost, PutRejectsContentHashMismatch) {
  HostHarness h;
  StorageFrame put;
  put.op = StorageFrame::Op::kPut;
  put.ticket = 8;
  put.id = Pid::of(block_from("claimed")).digest();
  put.payload = block_from("actual");  // Does not hash to the PID.
  const StorageFrame ack = h.request(put);
  EXPECT_EQ(ack.status, 0u);
  EXPECT_EQ(h.host.store().block_count(), 0u);
}

TEST(NodeHost, GetReturnsBlockOrMiss) {
  HostHarness h;
  const Block data = block_from("fetch me");
  const Pid pid = Pid::of(data);
  h.host.store().put(pid, data);

  StorageFrame get;
  get.op = StorageFrame::Op::kGet;
  get.ticket = 9;
  get.id = pid.digest();
  const StorageFrame reply = h.request(get);
  EXPECT_EQ(reply.op, StorageFrame::Op::kGetReply);
  EXPECT_EQ(reply.status, 1u);
  EXPECT_EQ(reply.payload, data);

  get.id = Pid::of(block_from("unknown")).digest();
  get.ticket = 10;
  const StorageFrame miss = h.request(get);
  EXPECT_EQ(miss.status, 0u);
  EXPECT_TRUE(miss.payload.empty());
}

TEST(NodeHost, HistoryGetServesCommittedEntries) {
  HostHarness h;
  const Guid guid = Guid::named("hosted");
  h.host.peer().import_history(guid.to_uint64(),
                               {{1, 11, 111}, {2, 22, 222}});
  StorageFrame hist;
  hist.op = StorageFrame::Op::kHistoryGet;
  hist.ticket = 11;
  hist.id = guid.digest();
  const StorageFrame reply = h.request(hist);
  EXPECT_EQ(reply.op, StorageFrame::Op::kHistoryReply);
  const auto entries = decode_history(reply.payload);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (std::pair<std::uint64_t, std::uint64_t>{11, 111}));
  EXPECT_EQ(entries[1], (std::pair<std::uint64_t, std::uint64_t>{22, 222}));
}

TEST(NodeHost, CommitFramesRouteToPeer) {
  HostHarness h;
  const commit::WireMessage update{commit::WireMessage::Kind::kUpdate, 5, 9,
                                   9, 90};
  h.network.send(50, 0, update.serialize());
  h.sched.run();
  EXPECT_EQ(h.host.peer().stats().updates_received, 1u);
  // The peer voted (broadcasts go to its configured peer set; here the
  // peer list is empty, so only stats move).
  EXPECT_EQ(h.host.peer().stats().votes_sent, 1u);
}

TEST(NodeHost, GarbageFramesIgnored) {
  HostHarness h;
  h.network.send(50, 0, "S");           // Truncated storage frame.
  h.network.send(50, 0, "??");          // Neither protocol.
  h.network.send(50, 0, std::string()); // Empty.
  h.sched.run();
  EXPECT_TRUE(h.storage_replies.empty());
  EXPECT_EQ(h.host.peer().stats().updates_received, 0u);
}

TEST(NodeHost, CrashDetachesFromNetwork) {
  HostHarness h;
  h.host.crash();
  StorageFrame get;
  get.op = StorageFrame::Op::kGet;
  get.ticket = 12;
  get.id = Pid::of(block_from("x")).digest();
  const std::size_t before = h.storage_replies.size();
  h.network.send(50, 0, get.serialize());
  h.sched.run();
  EXPECT_EQ(h.storage_replies.size(), before);
  EXPECT_GT(h.network.stats().to_dead_node, 0u);
}

}  // namespace
}  // namespace asa_repro::storage
