// Runtime conformance checking: valid executions of several independent
// implementations must pass; corrupted logs must be pinpointed.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "commit/generated/commit_fsm_r4.hpp"
#include "core/conformance.hpp"
#include "core/interpreter.hpp"
#include "sim/rng.hpp"

namespace asa_repro::fsm {
namespace {

StateMachine machine_r4() {
  return commit::CommitModel(4).generate_state_machine();
}

TEST(Conformance, AcceptsAValidCommitRun) {
  const StateMachine machine = machine_r4();
  ConformanceChecker checker(machine);
  EXPECT_TRUE(checker.observe(commit::kUpdate, {"vote", "not_free"}));
  EXPECT_TRUE(checker.observe(commit::kVote, {}));
  EXPECT_TRUE(checker.observe(commit::kVote, {"commit"}));
  EXPECT_TRUE(checker.observe(commit::kCommit, {}));
  EXPECT_TRUE(checker.observe(commit::kCommit, {"free"}));
  EXPECT_TRUE(checker.ok());
  EXPECT_TRUE(checker.finished());
}

TEST(Conformance, RejectsWrongActions) {
  const StateMachine machine = machine_r4();
  ConformanceChecker checker(machine);
  EXPECT_FALSE(checker.observe(commit::kUpdate, {"vote"}));  // Missing one.
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.error().find("actions differ"), std::string::npos);
  // Once failed, everything fails.
  EXPECT_FALSE(checker.observe(commit::kVote, {}));
}

TEST(Conformance, RejectsActionsOnInapplicableMessage) {
  const StateMachine machine = machine_r4();
  ConformanceChecker checker(machine);
  EXPECT_TRUE(checker.observe(commit::kUpdate, {"vote", "not_free"}));
  // A duplicate update is inapplicable; performing actions on it is a bug.
  EXPECT_FALSE(checker.observe(commit::kUpdate, {"vote"}));
  EXPECT_NE(checker.error().find("not applicable"), std::string::npos);
}

TEST(Conformance, AcceptsIgnoredInapplicableMessage) {
  const StateMachine machine = machine_r4();
  ConformanceChecker checker(machine);
  EXPECT_TRUE(checker.observe(commit::kUpdate, {"vote", "not_free"}));
  EXPECT_TRUE(checker.observe(commit::kUpdate, {}));  // Ignored: fine.
  EXPECT_TRUE(checker.ok());
}

TEST(Conformance, StateReportingChecked) {
  const StateMachine machine = machine_r4();
  ConformanceChecker checker(machine);
  EXPECT_TRUE(checker.observe_with_state(commit::kUpdate,
                                         {"vote", "not_free"},
                                         "T/0/T/0/F/T/T"));
  EXPECT_FALSE(
      checker.observe_with_state(commit::kVote, {}, "T/9/T/0/F/T/T"));
  EXPECT_NE(checker.error().find("reports state"), std::string::npos);
}

TEST(Conformance, ResetRecovers) {
  const StateMachine machine = machine_r4();
  ConformanceChecker checker(machine);
  (void)checker.observe(commit::kUpdate, {"wrong"});
  EXPECT_FALSE(checker.ok());
  checker.reset();
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.steps(), 0u);
  EXPECT_TRUE(checker.observe(commit::kUpdate, {"vote", "not_free"}));
}

TEST(Conformance, GeneratedArtifactConformsOnRandomWalks) {
  // Validate the checked-in generated implementation against the machine —
  // exactly the production use of the checker.
  class Recording : public generated::CommitFsmR4 {
   public:
    ActionList actions;

   private:
    void sendVote() override { actions.push_back("vote"); }
    void sendCommit() override { actions.push_back("commit"); }
    void sendFree() override { actions.push_back("free"); }
    void sendNotFree() override { actions.push_back("not_free"); }
  };

  const StateMachine machine = machine_r4();
  sim::Rng rng(31337);
  for (int walk = 0; walk < 100; ++walk) {
    Recording impl;
    ConformanceChecker checker(machine);
    for (int step = 0; step < 120 && !impl.finished(); ++step) {
      const auto m = static_cast<MessageId>(rng.below(5));
      impl.actions.clear();
      impl.receive(m);
      ASSERT_TRUE(checker.observe_with_state(m, impl.actions,
                                             impl.state_name()))
          << checker.error();
    }
    EXPECT_TRUE(checker.ok());
  }
}

TEST(Conformance, DetectsMutatedImplementation) {
  // An implementation that "forgets" to send its commit on the threshold
  // phase transition must be caught at exactly that step.
  const StateMachine machine = machine_r4();
  FsmInstance faithful(machine);
  ConformanceChecker checker(machine);
  sim::Rng rng(404);
  bool caught = false;
  for (int step = 0; step < 500 && !caught; ++step) {
    const auto m = static_cast<MessageId>(rng.below(5));
    const Transition* t = faithful.deliver(m);
    ActionList actions = t == nullptr ? ActionList{} : t->actions;
    // Mutate: drop "commit" actions.
    ActionList mutated;
    for (const auto& a : actions) {
      if (a != "commit") mutated.push_back(a);
    }
    const bool changed = mutated.size() != actions.size();
    const bool accepted = checker.observe(m, mutated);
    if (changed) {
      EXPECT_FALSE(accepted);
      caught = true;
    }
    if (faithful.finished()) {
      faithful.reset();
      if (!caught) checker.reset();
    }
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace asa_repro::fsm
