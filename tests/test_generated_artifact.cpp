// The checked-in generated implementation (commit_fsm_r4.hpp), the paper's
// "generate once during development, copy into the code-base" deployment
// (section 4.2): it must (a) be byte-identical to what the generator emits
// today, and (b) behave exactly like the interpreted machine.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "commit/commit_model.hpp"
#include "commit/generated/commit_fsm_r4.hpp"
#include "core/interpreter.hpp"
#include "core/render/code_renderer.hpp"
#include "sim/rng.hpp"

namespace asa_repro {
namespace {

/// Test double binding the generated class's action methods.
class RecordingFsm : public generated::CommitFsmR4 {
 public:
  std::vector<std::string> actions;

 private:
  void sendVote() override { actions.push_back("vote"); }
  void sendCommit() override { actions.push_back("commit"); }
  void sendFree() override { actions.push_back("free"); }
  void sendNotFree() override { actions.push_back("not_free"); }
};

TEST(GeneratedArtifact, RegenerationIsByteIdentical) {
  // Identical options to tools/fsmgen (which produced the artefact).
  commit::CommitModel model(4);
  const fsm::StateMachine machine = model.generate_state_machine();
  fsm::CodeGenOptions options;
  options.class_name = "CommitFsmR4";
  options.namespace_name = "asa_repro::generated";
  options.base_class = "asa_repro::commit::CommitActions";
  options.includes = {"commit/actions.hpp"};
  const std::string regenerated = fsm::CodeRenderer(options).render(machine);

  std::ifstream file(std::string(ASA_SRC_DIR) +
                     "/commit/generated/commit_fsm_r4.hpp");
  ASSERT_TRUE(file.is_open());
  std::stringstream checked_in;
  checked_in << file.rdbuf();
  EXPECT_EQ(checked_in.str(), regenerated)
      << "checked-in artefact is stale; regenerate with: "
         "fsmgen -r 4 --render code --class-name CommitFsmR4 "
         "-o src/commit/generated/commit_fsm_r4.hpp";
}

TEST(GeneratedArtifact, StartsAtStartState) {
  RecordingFsm fsm;
  EXPECT_STREQ(fsm.state_name(), "F/0/F/0/F/T/F");
  EXPECT_FALSE(fsm.finished());
}

TEST(GeneratedArtifact, NoContentionCommitPath) {
  RecordingFsm fsm;
  fsm.receiveUpdate();
  EXPECT_EQ(fsm.actions, (std::vector<std::string>{"vote", "not_free"}));
  fsm.receiveVote();
  fsm.receiveVote();  // Threshold: commit goes out.
  EXPECT_EQ(fsm.actions.back(), "commit");
  fsm.receiveCommit();
  fsm.receiveCommit();
  EXPECT_TRUE(fsm.finished());
  EXPECT_EQ(fsm.actions.back(), "free");
}

TEST(GeneratedArtifact, InapplicableMessagesIgnored) {
  RecordingFsm fsm;
  fsm.receiveUpdate();
  const auto state = fsm.state();
  fsm.receiveUpdate();  // Duplicate: default branch.
  EXPECT_EQ(fsm.state(), state);
  EXPECT_EQ(fsm.actions, (std::vector<std::string>{"vote", "not_free"}));
}

TEST(GeneratedArtifact, ResetReturnsToStart) {
  RecordingFsm fsm;
  fsm.receiveUpdate();
  fsm.reset();
  EXPECT_STREQ(fsm.state_name(), "F/0/F/0/F/T/F");
}

TEST(GeneratedArtifact, MatchesInterpreterOnRandomWalks) {
  commit::CommitModel model(4);
  const fsm::StateMachine machine = model.generate_state_machine();
  sim::Rng rng(2026);
  for (int walk = 0; walk < 200; ++walk) {
    RecordingFsm compiled;
    fsm::FsmInstance interp(machine);
    for (int step = 0; step < 150; ++step) {
      const auto m = static_cast<fsm::MessageId>(rng.below(5));
      compiled.actions.clear();
      compiled.receive(m);
      const fsm::Transition* t = interp.deliver(m);
      const std::vector<std::string> expected =
          t == nullptr ? std::vector<std::string>{} : t->actions;
      ASSERT_EQ(compiled.actions, expected) << "walk " << walk;
      ASSERT_STREQ(compiled.state_name(), interp.state_name().c_str());
      ASSERT_EQ(compiled.finished(), interp.finished());
      if (interp.finished()) break;
    }
  }
}

TEST(GeneratedArtifact, StateCountMatchesTable1) {
  EXPECT_EQ(generated::CommitFsmR4::kStateCount, 33u);
}

}  // namespace
}  // namespace asa_repro
