// XML artefact round-trip: render -> parse must reproduce the machine
// exactly (structure, names, actions, annotations, start/finish), for both
// toy machines and real commit family members.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "core/equivalence.hpp"
#include "core/render/xml_parser.hpp"
#include "core/render/xml_renderer.hpp"

namespace asa_repro::fsm {
namespace {

void expect_identical(const StateMachine& a, const StateMachine& b) {
  ASSERT_EQ(a.messages(), b.messages());
  ASSERT_EQ(a.state_count(), b.state_count());
  EXPECT_EQ(a.start(), b.start());
  EXPECT_EQ(a.finish(), b.finish());
  for (StateId i = 0; i < a.state_count(); ++i) {
    const State& sa = a.state(i);
    const State& sb = b.state(i);
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.is_final, sb.is_final);
    EXPECT_EQ(sa.annotations, sb.annotations) << sa.name;
    ASSERT_EQ(sa.transitions.size(), sb.transitions.size()) << sa.name;
    for (std::size_t t = 0; t < sa.transitions.size(); ++t) {
      EXPECT_EQ(sa.transitions[t].message, sb.transitions[t].message);
      EXPECT_EQ(sa.transitions[t].actions, sb.transitions[t].actions);
      EXPECT_EQ(sa.transitions[t].target, sb.transitions[t].target);
      EXPECT_EQ(sa.transitions[t].annotations, sb.transitions[t].annotations);
    }
  }
}

class XmlRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(XmlRoundTrip, CommitMachineSurvives) {
  commit::CommitModel model(GetParam());
  const StateMachine machine = model.generate_state_machine();
  const std::string xml = XmlRenderer().render(machine);
  std::string error;
  const auto parsed = parse_state_machine_xml(xml, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  expect_identical(machine, *parsed);
  EXPECT_TRUE(trace_equivalent(machine, *parsed));
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, XmlRoundTrip,
                         ::testing::Values(2u, 4u, 7u));

TEST(XmlRoundTripDetail, EscapedCharactersSurvive) {
  State s;
  s.name = "a<b&\"c\"";
  s.annotations = {"uses <, >, & and 'quotes'"};
  Transition t;
  t.message = 0;
  t.actions = {"fire&forget"};
  t.target = 0;
  t.annotations = {"loop > back"};
  s.transitions = {t};
  const StateMachine machine({"m<0>"}, {s}, 0, kNoState);

  const std::string xml = XmlRenderer().render(machine);
  std::string error;
  const auto parsed = parse_state_machine_xml(xml, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  expect_identical(machine, *parsed);
}

TEST(XmlRoundTripDetail, ParserRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse_state_machine_xml("", &error).has_value());
  EXPECT_FALSE(parse_state_machine_xml("<wrong/>", &error).has_value());
  EXPECT_FALSE(
      parse_state_machine_xml("<statemachine start=\"x\">", &error)
          .has_value());  // No states.
}

TEST(XmlRoundTripDetail, ParserRejectsDanglingReferences) {
  const std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<statemachine states=\"1\" start=\"s\">\n"
      "  <messages><message name=\"m\"/></messages>\n"
      "  <states><state name=\"s\"/></states>\n"
      "  <transitions>\n"
      "    <transition from=\"s\" message=\"m\" to=\"ghost\"/>\n"
      "  </transitions>\n"
      "</statemachine>\n";
  std::string error;
  EXPECT_FALSE(parse_state_machine_xml(xml, &error).has_value());
  EXPECT_NE(error.find("unknown state"), std::string::npos);
}

TEST(XmlRoundTripDetail, ParserRejectsDuplicateStates) {
  const std::string xml =
      "<statemachine start=\"s\">\n"
      "  <messages><message name=\"m\"/></messages>\n"
      "  <states><state name=\"s\"/><state name=\"s\"/></states>\n"
      "</statemachine>\n";
  std::string error;
  EXPECT_FALSE(parse_state_machine_xml(xml, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(XmlRoundTripDetail, MachineWithoutFinishRoundTrips) {
  State s;
  s.name = "only";
  Transition t;
  t.message = 0;
  t.target = 0;
  s.transitions = {t};
  const StateMachine machine({"m"}, {s}, 0, kNoState);
  const auto parsed =
      parse_state_machine_xml(XmlRenderer().render(machine));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->finish(), kNoState);
}

}  // namespace
}  // namespace asa_repro::fsm
