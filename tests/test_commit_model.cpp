// The commit-protocol abstract model: thresholds, the exact transitions and
// commentary the paper's Fig 14 shows, and structural invariants of the
// reachable state space for every plausible replication factor.
#include <gtest/gtest.h>

#include <set>

#include "commit/commit_model.hpp"
#include "core/interpreter.hpp"

namespace asa_repro::commit {
namespace {

using fsm::StateMachine;
using fsm::StateVector;

const fsm::Transition* transition_from(const StateMachine& machine,
                                       const std::string& state_name,
                                       Message message) {
  const auto id = machine.state_id(state_name);
  if (!id.has_value()) return nullptr;
  return machine.state(*id).transition(message);
}

TEST(CommitModel, ThresholdsFollowPaper) {
  // r > 3f: r=4 tolerates 1 fault, r=7 two, r=13 four, r=25 eight, r=46
  // fifteen (Table 1's f column).
  EXPECT_EQ(CommitModel(4).max_faulty(), 1u);
  EXPECT_EQ(CommitModel(7).max_faulty(), 2u);
  EXPECT_EQ(CommitModel(13).max_faulty(), 4u);
  EXPECT_EQ(CommitModel(25).max_faulty(), 8u);
  EXPECT_EQ(CommitModel(46).max_faulty(), 15u);
  // 2f+1 votes commit an update; f+1 commits finish it.
  EXPECT_EQ(CommitModel(4).vote_threshold(), 3u);
  EXPECT_EQ(CommitModel(4).commit_threshold(), 2u);
  EXPECT_EQ(CommitModel(7).vote_threshold(), 5u);
  EXPECT_EQ(CommitModel(7).commit_threshold(), 3u);
}

TEST(CommitModel, RejectsDegenerateReplicationFactor) {
  EXPECT_THROW(CommitModel(0), std::invalid_argument);
  EXPECT_THROW(CommitModel(1), std::invalid_argument);
  EXPECT_NO_THROW(CommitModel(2));
}

TEST(CommitModel, StartStateIsFreeAndEmpty) {
  CommitModel model(4);
  const StateVector start = model.start_state();
  EXPECT_EQ(model.space().name(start), "F/0/F/0/F/T/F");
}

// ---- Fig 14: the three transitions from T/2/F/0/F/F/F, exactly. ----

class Fig14Transitions : public ::testing::Test {
 protected:
  Fig14Transitions() : model_(4), machine_(model_.generate_state_machine()) {}
  CommitModel model_;
  StateMachine machine_;
};

TEST_F(Fig14Transitions, StateExistsInMergedMachine) {
  EXPECT_TRUE(machine_.state_id("T/2/F/0/F/F/F").has_value());
}

TEST_F(Fig14Transitions, VoteTriggersPhaseTransition) {
  const fsm::Transition* t =
      transition_from(machine_, "T/2/F/0/F/F/F", kVote);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->actions, (fsm::ActionList{"vote", "commit"}));
  EXPECT_EQ(machine_.state(t->target).name, "T/3/T/0/T/F/F");
}

TEST_F(Fig14Transitions, CommitCountsQuietly) {
  const fsm::Transition* t =
      transition_from(machine_, "T/2/F/0/F/F/F", kCommit);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->actions.empty());
  EXPECT_EQ(machine_.state(t->target).name, "T/2/F/1/F/F/F");
}

TEST_F(Fig14Transitions, FreeTriggersChoiceVoteAndCommit) {
  const fsm::Transition* t = transition_from(machine_, "T/2/F/0/F/F/F", kFree);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->actions, (fsm::ActionList{"vote", "commit", "not_free"}));
  EXPECT_EQ(machine_.state(t->target).name, "T/2/T/0/T/T/T");
}

TEST_F(Fig14Transitions, NotFreeIsQuietSelfLoopHere) {
  // could_choose is already false in this state.
  const fsm::Transition* t =
      transition_from(machine_, "T/2/F/0/F/F/F", kNotFree);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->actions.empty());
  EXPECT_EQ(machine_.state(t->target).name, "T/2/F/0/F/F/F");
}

TEST_F(Fig14Transitions, DescriptionMatchesFig14Verbatim) {
  CommitModel model(4);
  const auto v = model.space().parse_name("T/2/F/0/F/F/F");
  ASSERT_TRUE(v.has_value());
  const std::vector<std::string> lines = model.describe_state(*v);
  const std::vector<std::string> expected = {
      "Have received initial update from client.",
      "Have not voted since another update has already been voted for.",
      "Have received 2 votes and no commits.",
      "Have not sent a commit since neither the vote threshold (3) nor the "
      "external commit threshold (2) has been reached.",
      "May not choose since another ongoing update has been voted for.",
      "Have not chosen this update since another ongoing update has been "
      "chosen.",
      "Waiting for 1 further vote (including local vote if any) before "
      "sending commit.",
      "Waiting for 2 further external commits to finish.",
  };
  EXPECT_EQ(lines, expected);
}

// ---- Fig 16's third switch case: T-1-T-1-F-T-T on vote. ----

TEST_F(Fig14Transitions, Fig16VoteCaseMatches) {
  const fsm::Transition* t =
      transition_from(machine_, "T/1/T/1/F/T/T", kVote);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->actions, (fsm::ActionList{"commit"}));
  EXPECT_EQ(machine_.state(t->target).name, "T/2/T/1/T/T/T");
}

// ---- Handler-level semantics. ----

TEST(CommitModel, DuplicateUpdateNotApplicable) {
  CommitModel model(4);
  const auto v = model.space().parse_name("T/0/F/0/F/F/F");
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(model.react(*v, kUpdate).has_value());
}

TEST(CommitModel, VoteAtMaxCountNotApplicable) {
  CommitModel model(4);
  const auto v = model.space().parse_name("T/3/T/0/T/F/F");
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(model.react(*v, kVote).has_value());
}

TEST(CommitModel, CommitAtMaxCountNotApplicable) {
  CommitModel model(4);
  const auto v = model.space().parse_name("F/0/F/3/F/T/F");
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(model.react(*v, kCommit).has_value());
}

TEST(CommitModel, UpdateWhileFreeChoosesAndVotes) {
  CommitModel model(4);
  const auto reaction = model.react(model.start_state(), kUpdate);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_EQ(reaction->actions, (fsm::ActionList{"vote", "not_free"}));
  EXPECT_EQ(model.space().name(reaction->target), "T/0/T/0/F/T/T");
}

TEST(CommitModel, UpdateWhileLockedJustRecords) {
  CommitModel model(4);
  const auto v = model.space().parse_name("F/1/F/0/F/F/F");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kUpdate);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_TRUE(reaction->actions.empty());
  EXPECT_EQ(model.space().name(reaction->target), "T/1/F/0/F/F/F");
}

TEST(CommitModel, ThresholdJoinWhileFreeChoosesThisUpdate) {
  // 2 votes received, free, no update yet; a third vote reaches the
  // threshold: not_free precedes vote (Fig 10's order), commit follows.
  CommitModel model(4);
  const auto v = model.space().parse_name("F/2/F/0/F/T/F");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kVote);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_EQ(reaction->actions,
            (fsm::ActionList{"not_free", "vote", "commit"}));
  EXPECT_EQ(model.space().name(reaction->target), "F/3/T/0/T/T/T");
}

TEST(CommitModel, ThresholdJoinWhileLockedDoesNotChoose) {
  CommitModel model(4);
  const auto v = model.space().parse_name("F/2/F/0/F/F/F");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kVote);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_EQ(reaction->actions, (fsm::ActionList{"vote", "commit"}));
  EXPECT_EQ(model.space().name(reaction->target), "F/3/T/0/T/F/F");
}

TEST(CommitModel, FinalCommitSendsFreeWhenChosen) {
  CommitModel model(4);
  const auto v = model.space().parse_name("T/3/T/1/T/T/T");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kCommit);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_EQ(reaction->actions, (fsm::ActionList{"free"}));
  EXPECT_TRUE(model.is_final(reaction->target));
}

TEST(CommitModel, FinalCommitQuietWhenNotChosen) {
  CommitModel model(4);
  const auto v = model.space().parse_name("F/3/T/1/T/F/F");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kCommit);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_TRUE(reaction->actions.empty());
  EXPECT_TRUE(model.is_final(reaction->target));
}

TEST(CommitModel, CommitThresholdForcesLateVoteAndCommit) {
  // A machine that never saw the votes still joins when the network shows
  // f+1 commits (commit handler: send vote and commit before finishing).
  CommitModel model(4);
  const auto v = model.space().parse_name("F/0/F/1/F/T/F");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kCommit);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_EQ(reaction->actions, (fsm::ActionList{"vote", "commit"}));
  EXPECT_TRUE(model.is_final(reaction->target));
}

TEST(CommitModel, FreeIgnoredAfterVoting) {
  CommitModel model(4);
  const auto v = model.space().parse_name("F/3/T/0/T/F/F");
  ASSERT_TRUE(v.has_value());
  const auto reaction = model.react(*v, kFree);
  ASSERT_TRUE(reaction.has_value());
  EXPECT_TRUE(reaction->actions.empty());
  EXPECT_EQ(reaction->target, *v);  // Self-loop.
}

TEST(CommitModel, NotFreeLocksOnlyBeforeParticipation) {
  CommitModel model(4);
  const auto free_state = model.space().parse_name("F/1/F/0/F/T/F");
  ASSERT_TRUE(free_state.has_value());
  const auto locked = model.react(*free_state, kNotFree);
  ASSERT_TRUE(locked.has_value());
  EXPECT_EQ(model.space().name(locked->target), "F/1/F/0/F/F/F");

  const auto voted = model.space().parse_name("T/0/T/0/F/T/T");
  ASSERT_TRUE(voted.has_value());
  const auto ignored = model.react(*voted, kNotFree);
  ASSERT_TRUE(ignored.has_value());
  EXPECT_EQ(ignored->target, *voted);
}

// ---- Structural invariants over the whole reachable space. ----

class ReachableInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReachableInvariants, HoldForEveryReachableState) {
  const std::uint32_t r = GetParam();
  CommitModel model(r);
  fsm::GenerationOptions options;
  options.merge_equivalent = false;  // Inspect concrete variable states.
  const StateMachine machine = model.generate_state_machine(options);

  std::size_t finals = 0;
  for (const fsm::State& s : machine.states()) {
    const auto v = model.space().parse_name(s.name);
    ASSERT_TRUE(v.has_value()) << s.name;
    const std::uint32_t votes = (*v)[CommitModel::kVotesReceived];
    const std::uint32_t commits = (*v)[CommitModel::kCommitsReceived];
    const bool vote_sent = (*v)[CommitModel::kVoteSent] != 0;
    const bool commit_sent = (*v)[CommitModel::kCommitSent] != 0;
    const bool has_chosen = (*v)[CommitModel::kHasChosen] != 0;

    // Paper: "there are no reachable states where the commit count exceeds
    // f" — live states stay at or below f; finished states sit at f+1.
    if (s.is_final) {
      ++finals;
      EXPECT_EQ(commits, model.commit_threshold()) << s.name;
      EXPECT_TRUE(s.transitions.empty()) << s.name;
    } else {
      EXPECT_LE(commits, model.max_faulty()) << s.name;
    }
    // Choosing an update implies having voted for it.
    if (has_chosen) {
      EXPECT_TRUE(vote_sent) << s.name;
    }
    // A commit is sent exactly when a threshold has been reached.
    if (!s.is_final) {
      const bool vote_threshold_reached =
          votes + (vote_sent ? 1 : 0) >= model.vote_threshold();
      EXPECT_EQ(commit_sent, vote_threshold_reached) << s.name;
    }
    // Vote counts never exceed the peers available.
    EXPECT_LE(votes, r - 1) << s.name;
  }
  EXPECT_GT(finals, 0u);
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, ReachableInvariants,
                         ::testing::Values(2u, 4u, 5u, 7u, 8u, 13u));

// ---- End-to-end interpreted run for several r. ----

class InterpretedRun : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(InterpretedRun, NoContentionCommitPath) {
  const std::uint32_t r = GetParam();
  CommitModel model(r);
  const StateMachine machine = model.generate_state_machine();
  fsm::FsmInstance inst(machine);

  std::vector<std::string> sent;
  const auto deliver = [&](Message m) {
    const fsm::Transition* t = inst.deliver(m);
    if (t != nullptr) {
      for (const auto& a : t->actions) sent.push_back(a);
    }
  };

  deliver(kUpdate);  // Client's request: vote immediately.
  EXPECT_EQ(sent, (std::vector<std::string>{"vote", "not_free"}));
  // Peers' votes arrive until the threshold trips the commit.
  for (std::uint32_t v = 0; v + 1 < model.vote_threshold(); ++v) {
    deliver(kVote);
  }
  EXPECT_EQ(sent.back(), "commit");
  // f+1 commits finish the machine and free the node.
  for (std::uint32_t c = 0; c < model.commit_threshold(); ++c) {
    ASSERT_FALSE(inst.finished());
    deliver(kCommit);
  }
  EXPECT_TRUE(inst.finished());
  EXPECT_EQ(sent.back(), "free");
  // Finished machines ignore everything.
  EXPECT_EQ(inst.deliver(kVote), nullptr);
  EXPECT_EQ(inst.deliver(kUpdate), nullptr);
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, InterpretedRun,
                         ::testing::Values(4u, 7u, 13u, 25u));

TEST(InterpretedRunEdge, MinimalReplicationFactorCommitsImmediately) {
  // r=2 has f=0: the local vote alone reaches the threshold (1), so the
  // update transition votes AND commits in one step, and a single external
  // commit finishes.
  CommitModel model(2);
  const StateMachine machine = model.generate_state_machine();
  fsm::FsmInstance inst(machine);
  const fsm::Transition* t = inst.deliver(kUpdate);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->actions, (fsm::ActionList{"vote", "commit", "not_free"}));
  t = inst.deliver(kCommit);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(inst.finished());
  EXPECT_EQ(t->actions, (fsm::ActionList{"free"}));
}

}  // namespace
}  // namespace asa_repro::commit
