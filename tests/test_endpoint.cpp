// The service endpoint in isolation: quorum counting, stale-attempt
// confirmations, retry give-up, and distinct-sender requirements — driven
// with hand-crafted frames rather than live peers.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "commit/endpoint.hpp"

namespace asa_repro::commit {
namespace {

struct EndpointHarness {
  explicit EndpointHarness(RetryPolicy policy = {}, std::uint32_t f = 1)
      : network(sched, sim::Rng(3), sim::LatencyModel{100, 100}),
        endpoint(network, 100, {0, 1, 2, 3}, f, policy, sim::Rng(5)) {
    // Capture everything peers would receive.
    for (sim::NodeAddr addr : {0u, 1u, 2u, 3u}) {
      network.attach(addr, [this, addr](sim::NodeAddr,
                                        const std::string& data) {
        const auto msg = WireMessage::parse(data);
        if (msg.has_value()) received[addr].push_back(*msg);
      });
    }
  }

  /// A peer confirms the given attempt.
  void confirm(sim::NodeAddr from, const WireMessage& update) {
    WireMessage done = update;
    done.kind = WireMessage::Kind::kCommitted;
    network.send(from, 100, done.serialize());
  }

  sim::Scheduler sched;
  sim::Network network;
  CommitEndpoint endpoint;
  std::map<sim::NodeAddr, std::vector<WireMessage>> received;
};

TEST(Endpoint, SendsUpdateToEveryPeer) {
  EndpointHarness h;
  h.endpoint.submit(9, 1234, nullptr);
  h.sched.run_until(10'000);
  for (sim::NodeAddr addr : {0u, 1u, 2u, 3u}) {
    ASSERT_EQ(h.received[addr].size(), 1u) << addr;
    EXPECT_EQ(h.received[addr][0].kind, WireMessage::Kind::kUpdate);
    EXPECT_EQ(h.received[addr][0].guid, 9u);
    EXPECT_EQ(h.received[addr][0].payload, 1234u);
  }
}

TEST(Endpoint, QuorumOfDistinctConfirmationsCompletes) {
  EndpointHarness h;  // f=1: quorum is 2 distinct peers.
  CommitResult result;
  bool done = false;
  h.endpoint.submit(9, 1, [&](const CommitResult& r) {
    result = r;
    done = true;
  });
  h.sched.run_until(5'000);
  const WireMessage update = h.received[0][0];
  // The same peer confirming twice is one vote toward the quorum.
  h.confirm(0, update);
  h.confirm(0, update);
  h.sched.run_until(20'000);
  EXPECT_FALSE(done);
  h.confirm(1, update);
  h.sched.run_until(30'000);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 1u);
}

TEST(Endpoint, StaleAttemptConfirmationsIgnored) {
  RetryPolicy policy;
  policy.base_timeout = 30'000;  // Long enough that attempt 2 stays live
  policy.backoff = RetryPolicy::Backoff::kFixed;  // through the test.
  EndpointHarness h(policy);
  bool done = false;
  h.endpoint.submit(9, 1, [&](const CommitResult&) { done = true; });
  h.sched.run_until(5'000);
  const WireMessage first_attempt = h.received[0][0];
  // Let the first attempt time out; a retry with a fresh update id ships.
  h.sched.run_until(35'000);
  ASSERT_GE(h.received[0].size(), 2u);
  const WireMessage second_attempt = h.received[0].back();
  EXPECT_NE(first_attempt.update_id, second_attempt.update_id);
  EXPECT_EQ(first_attempt.request_id, second_attempt.request_id);

  // Confirmations of the stale attempt must not complete the request.
  h.confirm(0, first_attempt);
  h.confirm(1, first_attempt);
  h.sched.run_until(36'000);
  EXPECT_FALSE(done);
  // Confirmations of the live attempt do.
  h.confirm(2, second_attempt);
  h.confirm(3, second_attempt);
  h.sched.run_until(40'000);
  EXPECT_TRUE(done);
}

TEST(Endpoint, GivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.base_timeout = 5'000;
  policy.backoff = RetryPolicy::Backoff::kFixed;
  policy.max_attempts = 4;
  EndpointHarness h(policy);
  CommitResult result;
  bool done = false;
  h.endpoint.submit(9, 1, [&](const CommitResult& r) {
    result = r;
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_EQ(h.endpoint.stats().failures, 1u);
  EXPECT_EQ(h.endpoint.stats().retries, 3u);
  // 4 attempts reached each peer.
  EXPECT_EQ(h.received[0].size(), 4u);
}

TEST(Endpoint, StaggeredSendsArriveSpacedOut) {
  RetryPolicy policy;
  policy.stagger = 2'000;
  EndpointHarness h(policy);
  h.endpoint.submit(9, 1, nullptr);
  h.sched.run_until(1'500);
  // Only the first peer contacted so far (latency 100 + stagger steps).
  std::size_t delivered = 0;
  for (const auto& [addr, msgs] : h.received) delivered += msgs.size();
  EXPECT_EQ(delivered, 1u);
  h.sched.run_until(30'000);
  delivered = 0;
  for (const auto& [addr, msgs] : h.received) delivered += msgs.size();
  EXPECT_EQ(delivered, 4u);
}

TEST(Endpoint, RandomOrderStillReachesAllPeers) {
  RetryPolicy policy;
  policy.order = RetryPolicy::ServerOrder::kRandom;
  EndpointHarness h(policy);
  h.endpoint.submit(9, 1, nullptr);
  h.sched.run_until(10'000);
  for (sim::NodeAddr addr : {0u, 1u, 2u, 3u}) {
    EXPECT_EQ(h.received[addr].size(), 1u) << addr;
  }
}

TEST(Endpoint, ConcurrentRequestsKeptSeparate) {
  EndpointHarness h;
  int committed = 0;
  const auto id_a = h.endpoint.submit(9, 1, [&](const CommitResult& r) {
    committed += r.committed ? 1 : 0;
  });
  const auto id_b = h.endpoint.submit(9, 2, [&](const CommitResult& r) {
    committed += r.committed ? 1 : 0;
  });
  EXPECT_NE(id_a, id_b);
  h.sched.run_until(5'000);
  // Two distinct updates reached the peers.
  ASSERT_EQ(h.received[0].size(), 2u);
  const WireMessage a = h.received[0][0];
  const WireMessage b = h.received[0][1];
  EXPECT_NE(a.update_id, b.update_id);
  // Confirming only A completes only A.
  h.confirm(0, a);
  h.confirm(1, a);
  h.sched.run_until(9'000);
  EXPECT_EQ(committed, 1);
  h.confirm(2, b);
  h.confirm(3, b);
  h.sched.run_until(15'000);
  EXPECT_EQ(committed, 2);
}

TEST(Endpoint, ExponentialBackoffIsClampedAtHighAttemptCounts) {
  // Enough attempts to overflow an unclamped base_timeout << attempt many
  // times over. With the clamp, inter-attempt gaps plateau at max_backoff
  // instead of wrapping to near-zero (a silent retry storm).
  RetryPolicy policy;
  policy.backoff = RetryPolicy::Backoff::kExponential;
  policy.base_timeout = 1'000;
  policy.max_backoff = 8'000;
  policy.max_attempts = 200;
  sim::Scheduler sched;
  sim::Network network(sched, sim::Rng(3), sim::LatencyModel{100, 100});
  CommitEndpoint endpoint(network, 100, {0, 1, 2, 3}, 1, policy,
                          sim::Rng(5));
  std::vector<sim::Time> arrivals;
  network.attach(0, [&](sim::NodeAddr, const std::string&) {
    arrivals.push_back(sched.now());
  });
  bool done = false;
  CommitResult result;
  endpoint.submit(9, 1, [&](const CommitResult& r) {
    result = r;
    done = true;
  });
  sched.run_until(5'000'000);  // Never confirmed: all 200 attempts fire.
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.attempts, 200u);
  ASSERT_EQ(arrivals.size(), 200u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const sim::Time gap = arrivals[i] - arrivals[i - 1];
    // Delay is clamped backoff + jitter below base_timeout; latency adds a
    // little slack either way. An overflow wrap would collapse the gap.
    EXPECT_LE(gap, policy.max_backoff + policy.base_timeout + 400)
        << "attempt " << i;
    EXPECT_GE(gap, 800u) << "attempt " << i;
  }
}

TEST(Endpoint, ExponentialBackoffSurvivesHugeBaseTimeouts) {
  // A pathological base_timeout near the top of the 64-bit range must not
  // wrap the retry arithmetic: the endpoint still walks through its
  // attempts and gives up, rather than hanging or retry-storming.
  RetryPolicy policy;
  policy.backoff = RetryPolicy::Backoff::kExponential;
  policy.base_timeout = sim::Time{1} << 62;
  policy.max_attempts = 4;
  EndpointHarness h(policy);
  bool done = false;
  CommitResult result;
  h.endpoint.submit(9, 1, [&](const CommitResult& r) {
    result = r;
    done = true;
  });
  h.sched.run_until(std::numeric_limits<sim::Time>::max());
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.attempts, 4u);
}

}  // namespace
}  // namespace asa_repro::commit
