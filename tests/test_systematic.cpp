// Systematic concurrency testing of the deployed commit protocol:
// delay-bounded exploration of message-delivery schedules (in the spirit of
// delay-bounded scheduling for concurrency testing). The network runs in
// manual mode, the harness enumerates every schedule that deviates from
// FIFO delivery in at most D positions (bounded index), and SAFETY must
// hold on every schedule:
//
//   * honest peers never commit two updates in opposite orders,
//   * committed payloads are never invented,
//   * per-peer vote/commit sends stay within protocol bounds.
//
// Liveness is classified, not asserted: without retries some schedules
// deadlock (the paper says so), and the exploration COUNTS them — each
// deadlocked schedule has split votes, never a safety hole.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "commit/machine_cache.hpp"
#include "commit/peer.hpp"

namespace asa_repro::commit {
namespace {

constexpr std::uint64_t kGuid = 77;

struct ScheduleOutcome {
  int finished_updates = 0;   // Updates committed on every honest peer.
  bool deadlocked = false;    // Messages exhausted with live instances.
  bool safety_violated = false;
  std::string violation;
};

/// Run one schedule: updates are injected, then pending messages are
/// delivered following `deviations` (step -> pending index), FIFO
/// otherwise, until the network drains.
ScheduleOutcome run_schedule(const std::map<std::size_t, std::size_t>&
                                 deviations,
                             int updates) {
  static MachineCache cache;
  const fsm::StateMachine& machine = cache.machine_for(4);
  sim::Scheduler sched;
  sim::Network network(sched, sim::Rng(1), sim::LatencyModel{1, 1});
  network.set_manual_mode(true);

  std::vector<sim::NodeAddr> addrs{0, 1, 2, 3};
  std::vector<std::unique_ptr<CommitPeer>> peers;
  for (sim::NodeAddr a : addrs) {
    peers.push_back(std::make_unique<CommitPeer>(network, a, addrs, machine));
  }
  // Clients: bare update frames injected directly (no endpoint timers —
  // the explorer owns time). Frames are interleaved per peer (A0 B0 A1 B1
  // ...) so a single small-index deviation can flip which update a peer
  // sees first, putting vote splits within the exploration's reach.
  for (sim::NodeAddr a : addrs) {
    for (int u = 0; u < updates; ++u) {
      const WireMessage update{WireMessage::Kind::kUpdate, kGuid,
                               static_cast<std::uint64_t>(100 + u),
                               static_cast<std::uint64_t>(100 + u), 0};
      network.send(static_cast<sim::NodeAddr>(900 + u), a,
                   update.serialize());
    }
  }

  ScheduleOutcome outcome;
  std::size_t step = 0;
  while (network.pending_count() > 0 && step < 10'000) {
    std::size_t index = 0;
    if (const auto it = deviations.find(step); it != deviations.end()) {
      index = std::min(it->second, network.pending_count() - 1);
    }
    network.deliver_pending(index);
    ++step;
  }

  // ---- Safety checks over the final state. ----
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> order;
  std::map<std::uint64_t, int> commit_counts;
  for (const auto& p : peers) {
    const auto& h = p->history(kGuid);
    for (std::size_t i = 0; i < h.size(); ++i) {
      ++commit_counts[h[i].update_id];
      if (h[i].update_id < 100 ||
          h[i].update_id >= 100 + static_cast<std::uint64_t>(updates)) {
        outcome.safety_violated = true;
        outcome.violation = "invented update id";
      }
      for (std::size_t j = i + 1; j < h.size(); ++j) {
        const auto key = std::minmax(h[i].update_id, h[j].update_id);
        const int dir = h[i].update_id < h[j].update_id ? 1 : -1;
        const auto [it, inserted] = order.emplace(key, dir);
        if (!inserted && it->second != dir) {
          outcome.safety_violated = true;
          outcome.violation = "opposite commit orders";
        }
      }
    }
    // Protocol bounds: one vote and at most... every instance sends its
    // vote and commit once; with `updates` instances the totals are capped.
    if (p->stats().votes_sent > static_cast<std::uint64_t>(updates) ||
        p->stats().commits_sent > static_cast<std::uint64_t>(updates)) {
      outcome.safety_violated = true;
      outcome.violation = "excess protocol messages";
    }
  }
  for (const auto& [uid, count] : commit_counts) {
    if (count == static_cast<int>(peers.size())) {
      ++outcome.finished_updates;
    }
  }
  for (const auto& p : peers) {
    if (p->live_instances(kGuid) > 0) outcome.deadlocked = true;
  }
  return outcome;
}

TEST(Systematic, FifoScheduleCommitsEverything) {
  const ScheduleOutcome outcome = run_schedule({}, 2);
  EXPECT_FALSE(outcome.safety_violated) << outcome.violation;
  EXPECT_EQ(outcome.finished_updates, 2);
  EXPECT_FALSE(outcome.deadlocked);
}

TEST(Systematic, DelayBoundedExplorationPreservesSafety) {
  // All schedules with at most 2 deviations from FIFO, deviation index
  // capped at 3, over the first 24 delivery steps. ~3k schedules; every
  // one must be safe. Deadlocks may occur and are counted.
  const std::size_t kSteps = 24;
  const std::size_t kMaxIndex = 3;
  int schedules = 0, deadlocks = 0, all_committed = 0;

  // 0 deviations.
  {
    const ScheduleOutcome o = run_schedule({}, 2);
    ASSERT_FALSE(o.safety_violated) << o.violation;
    ++schedules;
  }
  // 1 deviation.
  for (std::size_t pos = 0; pos < kSteps; ++pos) {
    for (std::size_t idx = 1; idx <= kMaxIndex; ++idx) {
      const ScheduleOutcome o = run_schedule({{pos, idx}}, 2);
      ASSERT_FALSE(o.safety_violated)
          << o.violation << " at pos " << pos << " idx " << idx;
      ++schedules;
      deadlocks += o.deadlocked;
      all_committed += o.finished_updates == 2;
    }
  }
  // 2 deviations (coarser grid to keep runtime sane).
  for (std::size_t pos1 = 0; pos1 < kSteps; pos1 += 2) {
    for (std::size_t pos2 = pos1 + 1; pos2 < kSteps; pos2 += 2) {
      for (std::size_t idx1 = 1; idx1 <= kMaxIndex; idx1 += 2) {
        for (std::size_t idx2 = 1; idx2 <= kMaxIndex; idx2 += 2) {
          const ScheduleOutcome o =
              run_schedule({{pos1, idx1}, {pos2, idx2}}, 2);
          ASSERT_FALSE(o.safety_violated)
              << o.violation << " at (" << pos1 << "," << idx1 << ")+("
              << pos2 << "," << idx2 << ")";
          ++schedules;
          deadlocks += o.deadlocked;
          all_committed += o.finished_updates == 2;
        }
      }
    }
  }
  RecordProperty("schedules", schedules);
  RecordProperty("deadlocks", deadlocks);
  // The exploration must cover real behavioural diversity: schedules that
  // commit everything AND schedules that genuinely deadlock on a vote
  // split (the paper's stated hazard) — all of them safe.
  EXPECT_GT(schedules, 200);
  EXPECT_GT(all_committed, 0);
  EXPECT_GT(deadlocks, 0);
}

TEST(Systematic, SingleUpdateNeverDeadlocks) {
  // With one update there is no vote split: every bounded deviation
  // schedule must commit it everywhere.
  for (std::size_t pos = 0; pos < 20; ++pos) {
    for (std::size_t idx = 1; idx <= 3; ++idx) {
      const ScheduleOutcome o = run_schedule({{pos, idx}}, 1);
      ASSERT_FALSE(o.safety_violated) << o.violation;
      EXPECT_EQ(o.finished_updates, 1) << "pos " << pos << " idx " << idx;
      EXPECT_FALSE(o.deadlocked);
    }
  }
}

}  // namespace
}  // namespace asa_repro::commit
