// Paper Table 1, asserted exactly, plus the closed-form the counts follow
// and the pre-merge (pruned) sizes the generation pipeline predicts.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"

namespace asa_repro::commit {
namespace {

struct Table1Row {
  std::uint32_t f;
  std::uint32_t r;
  std::uint64_t initial_states;
  std::uint64_t final_states;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, CountsMatchPaperExactly) {
  const Table1Row row = GetParam();
  CommitModel model(row.r);
  EXPECT_EQ(model.max_faulty(), row.f);
  fsm::GenerationReport report;
  const fsm::StateMachine machine =
      model.generate_state_machine({}, &report);
  EXPECT_EQ(report.initial_states, row.initial_states);
  EXPECT_EQ(report.final_states, row.final_states);
  EXPECT_EQ(machine.state_count(), row.final_states);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1,
    ::testing::Values(Table1Row{1, 4, 512, 33}, Table1Row{2, 7, 1568, 85},
                      Table1Row{4, 13, 5408, 261},
                      Table1Row{8, 25, 20000, 901},
                      Table1Row{15, 46, 67712, 2945}),
    [](const ::testing::TestParamInfo<Table1Row>& info) {
      return "r" + std::to_string(info.param.r);
    });

TEST(Table1Text, PrunedCountForR4MatchesSection34) {
  // Section 3.4: "this step reduces the state space from its initial size
  // of 512 to 48", then merging yields 33.
  CommitModel model(4);
  fsm::GenerationReport report;
  (void)model.generate_state_machine({}, &report);
  EXPECT_EQ(report.reachable_states, 48u);
}

TEST(Table1Formula, InitialStatesAre32RSquared) {
  // Section 3.4: the space of possible states has size 2^5 * r^2.
  for (std::uint32_t r : {4u, 5u, 7u, 10u, 13u, 25u, 46u}) {
    CommitModel model(r);
    EXPECT_EQ(model.space().size(), 32ull * r * r) << "r=" << r;
  }
}

TEST(Table1Formula, FinalStatesFollowClosedForm) {
  // The paper's final counts fit (2r+1)(2r+3)/3 exactly for r = 3f+1; the
  // model must keep doing so beyond the published rows.
  for (std::uint32_t r : {4u, 7u, 10u, 13u, 16u, 19u, 22u, 25u, 46u}) {
    CommitModel model(r);
    fsm::GenerationReport report;
    (void)model.generate_state_machine({}, &report);
    EXPECT_EQ(report.final_states,
              (2ull * r + 1) * (2ull * r + 3) / 3)
        << "r=" << r;
  }
}

TEST(Table1Formula, PrunedStatesPrediction) {
  // Pre-merge reachable sizes implied by the validated semantics: 48, 112,
  // 312, 1000, 3128 for the paper's five rows (the paper only reports the
  // r=4 value; the rest are this reproduction's predictions, kept pinned
  // here so regressions surface).
  const std::pair<std::uint32_t, std::uint64_t> expected[] = {
      {4u, 48u}, {7u, 112u}, {13u, 312u}, {25u, 1000u}, {46u, 3128u}};
  for (const auto& [r, pruned] : expected) {
    CommitModel model(r);
    fsm::GenerationReport report;
    (void)model.generate_state_machine({}, &report);
    EXPECT_EQ(report.reachable_states, pruned) << "r=" << r;
  }
}

TEST(Table1Formula, PrunedStatesFollowClosedForm) {
  // Like the final counts, the reachable (pre-merge) counts have a clean
  // closed form for r = 3f+1: 4r(r+5)/3.
  for (std::uint32_t r : {4u, 7u, 10u, 13u, 19u, 25u, 46u}) {
    CommitModel model(r);
    fsm::GenerationReport report;
    (void)model.generate_state_machine({}, &report);
    EXPECT_EQ(report.reachable_states, 4ull * r * (r + 5) / 3) << "r=" << r;
  }
}

TEST(Table1Timing, GenerationIsNotALimitingFactor) {
  // The paper's pragmatic conclusion. Generous bound: the largest family
  // member must generate in well under a minute (it takes well under a
  // second on current hardware).
  CommitModel model(46);
  fsm::GenerationReport report;
  (void)model.generate_state_machine({}, &report);
  EXPECT_LT(report.total_time(), std::chrono::seconds(30));
}

TEST(Table1Sanity, EachStateHasBoundedTransitions) {
  // Section 3.1: "33 states with 3-4 transitions from each". Self-loops on
  // free/not_free are recorded, so every live state reacts to 3-5 of the 5
  // messages.
  CommitModel model(4);
  const fsm::StateMachine machine = model.generate_state_machine();
  std::size_t total = 0;
  for (const fsm::State& s : machine.states()) {
    if (s.is_final) continue;
    EXPECT_GE(s.transitions.size(), 3u) << s.name;
    EXPECT_LE(s.transitions.size(), 5u) << s.name;
    total += s.transitions.size();
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace asa_repro::commit
