// The version-history service in isolation: per-GUID endpoint management,
// read quorums with missing/lying peers, and the history wire protocol —
// driven with scripted peer stand-ins rather than the full cluster.
#include <gtest/gtest.h>

#include <map>

#include "storage/version_history.hpp"

namespace asa_repro::storage {
namespace {

/// A scripted peer that serves canned history replies (and can be told to
/// stay silent or lie).
class ScriptedPeer {
 public:
  ScriptedPeer(sim::Network& network, sim::NodeAddr addr)
      : network_(network), addr_(addr) {
    network.attach(addr, [this](sim::NodeAddr from, const std::string& data) {
      const auto frame = StorageFrame::parse(data);
      if (!frame.has_value() ||
          frame->op != StorageFrame::Op::kHistoryGet || silent_) {
        return;
      }
      StorageFrame reply;
      reply.op = StorageFrame::Op::kHistoryReply;
      reply.ticket = frame->ticket;
      reply.id = frame->id;
      reply.status = 1;
      reply.payload = encode_history(history_);
      network_.send(addr_, from, reply.serialize());
    });
  }

  void set_history(std::vector<std::pair<std::uint64_t, std::uint64_t>> h) {
    history_ = std::move(h);
  }
  void set_silent(bool silent) { silent_ = silent; }

 private:
  sim::Network& network_;
  sim::NodeAddr addr_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> history_;
  bool silent_ = false;
};

struct VhHarness {
  VhHarness()
      : network(sched, sim::Rng(2), sim::LatencyModel{100, 200}) {
    for (sim::NodeAddr a : {0u, 1u, 2u, 3u}) {
      peers.emplace(a, std::make_unique<ScriptedPeer>(network, a));
    }
    commit::RetryPolicy policy;
    policy.base_timeout = 20'000;
    policy.max_attempts = 2;
    service = std::make_unique<VersionHistoryService>(
        network, 1'000, [](const Guid&) {
          return std::vector<sim::NodeAddr>{0, 1, 2, 3};
        },
        4, 1, policy, sim::Rng(7));
  }

  sim::Scheduler sched;
  sim::Network network;
  std::map<sim::NodeAddr, std::unique_ptr<ScriptedPeer>> peers;
  std::unique_ptr<VersionHistoryService> service;
};

TEST(VersionHistoryService, ReadAgreesAcrossHonestPeers) {
  VhHarness h;
  for (auto& [addr, peer] : h.peers) {
    peer->set_history({{1, 11}, {2, 22}});
  }
  HistoryReadResult result;
  h.service->read(Guid::named("g"), [&](const HistoryReadResult& r) {
    result = r;
  });
  h.sched.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.replies, 4u);
  EXPECT_EQ(result.versions, (std::vector<std::uint64_t>{11, 22}));
}

TEST(VersionHistoryService, OneLiarIsOutvoted) {
  VhHarness h;
  for (sim::NodeAddr a : {0u, 1u, 2u}) {
    h.peers[a]->set_history({{1, 11}, {2, 22}});
  }
  h.peers[3]->set_history({{1, 666}, {2, 667}, {3, 668}});
  HistoryReadResult result;
  h.service->read(Guid::named("g"), [&](const HistoryReadResult& r) {
    result = r;
  });
  h.sched.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.versions, (std::vector<std::uint64_t>{11, 22}));
}

TEST(VersionHistoryService, SilentPeerStillAllowsReadViaTimeout) {
  VhHarness h;
  for (sim::NodeAddr a : {0u, 1u, 2u}) {
    h.peers[a]->set_history({{1, 11}});
  }
  h.peers[3]->set_silent(true);
  HistoryReadResult result;
  bool done = false;
  h.service->read(
      Guid::named("g"),
      [&](const HistoryReadResult& r) {
        result = r;
        done = true;
      },
      /*timeout=*/30'000);
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);  // 3 >= f+1 replies.
  EXPECT_EQ(result.replies, 3u);
  EXPECT_EQ(result.versions, (std::vector<std::uint64_t>{11}));
}

TEST(VersionHistoryService, TooFewRepliesIsNotOk) {
  VhHarness h;
  h.peers[0]->set_history({{1, 11}});
  for (sim::NodeAddr a : {1u, 2u, 3u}) h.peers[a]->set_silent(true);
  HistoryReadResult result;
  bool done = false;
  h.service->read(
      Guid::named("g"),
      [&](const HistoryReadResult& r) {
        result = r;
        done = true;
      },
      /*timeout=*/20'000);
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);  // 1 < f+1.
}

TEST(VersionHistoryService, PerGuidEndpointsAreCachedAndDistinct) {
  VhHarness h;
  // Appends to two GUIDs allocate two endpoints (distinct client addrs);
  // a second append to the same GUID reuses the first endpoint. Observable
  // through the update frames the scripted peers receive.
  std::map<sim::NodeAddr, int> update_sources;
  h.network.attach(0, [&](sim::NodeAddr from, const std::string& data) {
    const auto msg = commit::WireMessage::parse(data);
    if (msg.has_value() &&
        msg->kind == commit::WireMessage::Kind::kUpdate) {
      ++update_sources[from];
    }
  });
  h.service->append(Guid::named("a"), Pid::of(block_from("x")), nullptr);
  h.service->append(Guid::named("b"), Pid::of(block_from("y")), nullptr);
  h.service->append(Guid::named("a"), Pid::of(block_from("z")), nullptr);
  h.sched.run_until(5'000);
  EXPECT_EQ(update_sources.size(), 2u);  // Two endpoints, not three.
  int total = 0;
  for (const auto& [src, n] : update_sources) total += n;
  EXPECT_EQ(total, 3);
}

}  // namespace
}  // namespace asa_repro::storage
