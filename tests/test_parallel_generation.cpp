// The parallel generation engine's determinism contract (parallel.hpp):
// every artefact produced with jobs=N must be bit-identical to the jobs=1
// legacy serial path — machines, rendered Fig 14 text, generated Fig 16
// code — plus the thread pool's own guarantees and the on-disk machine
// cache's hit/invalidation behaviour (paper section 4.2's caching policy).
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "commit/machine_cache.hpp"
#include "core/abstract_model.hpp"
#include "core/analysis.hpp"
#include "core/equivalence.hpp"
#include "core/machine_cache.hpp"
#include "core/parallel.hpp"
#include "core/render/code_renderer.hpp"
#include "core/render/text_renderer.hpp"
#include "models/termination_model.hpp"

namespace asa_repro {
namespace {

/// Field-by-field equality, not behavioural equivalence: the determinism
/// contract promises byte-identical artefacts, so names, ordering and
/// annotation text must all match.
void expect_identical(const fsm::StateMachine& expected,
                      const fsm::StateMachine& actual,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(expected.messages(), actual.messages());
  ASSERT_EQ(expected.start(), actual.start());
  ASSERT_EQ(expected.finish(), actual.finish());
  ASSERT_EQ(expected.state_count(), actual.state_count());
  for (fsm::StateId s = 0; s < expected.state_count(); ++s) {
    const fsm::State& e = expected.state(s);
    const fsm::State& a = actual.state(s);
    ASSERT_EQ(e.name, a.name) << "state " << s;
    ASSERT_EQ(e.is_final, a.is_final) << "state " << s;
    ASSERT_EQ(e.annotations, a.annotations) << "state " << s;
    ASSERT_EQ(e.transitions.size(), a.transitions.size()) << "state " << s;
    for (std::size_t t = 0; t < e.transitions.size(); ++t) {
      const fsm::Transition& et = e.transitions[t];
      const fsm::Transition& at = a.transitions[t];
      ASSERT_EQ(et.message, at.message) << e.name << " transition " << t;
      ASSERT_EQ(et.actions, at.actions) << e.name << " transition " << t;
      ASSERT_EQ(et.target, at.target) << e.name << " transition " << t;
      ASSERT_EQ(et.annotations, at.annotations)
          << e.name << " transition " << t;
    }
  }
}

fsm::GenerationOptions with_jobs(unsigned jobs) {
  fsm::GenerationOptions options;
  options.jobs = jobs;
  return options;
}

std::filesystem::path fresh_cache_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ParallelGeneration, BitIdenticalAcrossJobCounts) {
  for (const std::uint32_t r : {4u, 7u, 10u}) {
    const commit::CommitModel model(r);
    fsm::GenerationReport serial_report;
    const fsm::StateMachine serial =
        model.generate_state_machine(with_jobs(1), &serial_report);
    for (const unsigned jobs : {2u, 8u}) {
      fsm::GenerationReport report;
      const fsm::StateMachine parallel =
          model.generate_state_machine(with_jobs(jobs), &report);
      expect_identical(serial, parallel,
                       "r=" + std::to_string(r) +
                           " jobs=" + std::to_string(jobs));
      EXPECT_EQ(serial_report.initial_states, report.initial_states);
      EXPECT_EQ(serial_report.transitions, report.transitions);
      EXPECT_EQ(serial_report.reachable_states, report.reachable_states);
      EXPECT_EQ(serial_report.final_states, report.final_states);
    }
  }
}

TEST(ParallelGeneration, RenderedArtefactsIdentical) {
  for (const std::uint32_t r : {4u, 7u}) {
    const commit::CommitModel model(r);
    const fsm::StateMachine serial =
        model.generate_state_machine(with_jobs(1));
    const fsm::StateMachine parallel =
        model.generate_state_machine(with_jobs(8));

    // Fig 14: the textual artefact, byte for byte.
    EXPECT_EQ(fsm::TextRenderer().render(serial),
              fsm::TextRenderer().render(parallel))
        << "r=" << r;

    // Fig 16: the generated source, byte for byte.
    fsm::CodeGenOptions cg;
    cg.class_name = "CommitFsmParallelTest";
    cg.namespace_name = "asa_repro::generated";
    cg.base_class = "asa_repro::commit::CommitActions";
    cg.includes = {"commit/actions.hpp"};
    EXPECT_EQ(fsm::CodeRenderer(cg).render(serial),
              fsm::CodeRenderer(cg).render(parallel))
        << "r=" << r;
  }
}

TEST(ParallelGeneration, IntermediateStepVariantsIdentical) {
  // The intermediate Figs 7/11/12 data structures (prune/merge/annotate
  // disabled) exercise every compaction path; they must be deterministic
  // too.
  const commit::CommitModel model(7);
  for (const bool prune : {false, true}) {
    for (const bool merge : {false, true}) {
      fsm::GenerationOptions serial = with_jobs(1);
      serial.prune_unreachable = prune;
      serial.merge_equivalent = merge;
      serial.annotate = !merge;
      fsm::GenerationOptions parallel = serial;
      parallel.jobs = 8;
      expect_identical(model.generate_state_machine(serial),
                       model.generate_state_machine(parallel),
                       "prune=" + std::to_string(prune) +
                           " merge=" + std::to_string(merge));
    }
  }
}

TEST(ParallelGeneration, TerminationModelIdentical) {
  const models::TerminationModel model(6);
  expect_identical(model.generate_state_machine(with_jobs(1)),
                   model.generate_state_machine(with_jobs(8)),
                   "termination n=6");
}

TEST(ParallelAnalysis, ReportIdenticalAcrossJobCounts) {
  const fsm::StateMachine machine =
      commit::CommitModel(7).generate_state_machine();
  const fsm::MachineAnalysis serial = fsm::analyze(machine, 1);
  const fsm::MachineAnalysis parallel = fsm::analyze(machine, 8);
  EXPECT_EQ(serial.to_string(), parallel.to_string());
  EXPECT_EQ(serial.dead_states, parallel.dead_states);
}

TEST(ParallelEquivalence, SameVerdictAndWitnessAcrossJobCounts) {
  const fsm::StateMachine machine =
      commit::CommitModel(4).generate_state_machine();
  EXPECT_FALSE(fsm::find_divergence(machine, machine, 1).has_value());
  EXPECT_FALSE(fsm::find_divergence(machine, machine, 8).has_value());

  // Mutate one transition's actions; the shortest witness (BFS order) must
  // come out identical whatever the job count.
  fsm::StateMachine mutated = machine;
  for (fsm::State& s : mutated.states()) {
    for (fsm::Transition& t : s.transitions) {
      if (!t.actions.empty()) {
        t.actions.push_back("spurious");
        goto mutated_one;
      }
    }
  }
mutated_one:
  const auto serial = fsm::find_divergence(machine, mutated, 1);
  const auto parallel = fsm::find_divergence(machine, mutated, 8);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(serial->trace, parallel->trace);
  EXPECT_EQ(serial->reason, parallel->reason);
}

TEST(ThreadPoolTest, ResolvesJobCounts) {
  EXPECT_GE(fsm::hardware_jobs(), 1u);
  EXPECT_EQ(fsm::resolve_jobs(0), fsm::hardware_jobs());
  EXPECT_EQ(fsm::resolve_jobs(5), 5u);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 8u}) {
    const fsm::ThreadPool pool(jobs);
    constexpr std::uint64_t kCount = 10'000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.for_range(kCount, [&](std::uint64_t begin, std::uint64_t end) {
      for (std::uint64_t i = begin; i < end; ++i) ++hits[i];
    });
    for (std::uint64_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
    pool.for_range(0, [](std::uint64_t, std::uint64_t) { FAIL(); });
  }
}

TEST(ThreadPoolTest, RethrowsChunkExceptions) {
  const fsm::ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_range(1000,
                     [](std::uint64_t begin, std::uint64_t) {
                       if (begin >= 500) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
  // The pool must stay usable after a failed task.
  std::atomic<std::uint64_t> sum{0};
  pool.for_range(100, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(MachineCacheTest, MemoryThenDiskHits) {
  const std::filesystem::path dir = fresh_cache_dir("asa_cache_hits");
  int generations = 0;
  const auto generate = [&] {
    ++generations;
    return commit::CommitModel(4).generate_state_machine();
  };

  fsm::MachineCache first(dir);
  const fsm::StateMachine& generated =
      first.machine_for("commit", 4, generate);
  EXPECT_EQ(generations, 1);
  EXPECT_EQ(first.stats().misses, 1u);
  (void)first.machine_for("commit", 4, generate);
  EXPECT_EQ(generations, 1);
  EXPECT_EQ(first.stats().memory_hits, 1u);
  EXPECT_TRUE(first.contains("commit", 4));
  EXPECT_FALSE(first.contains("commit", 7));
  EXPECT_FALSE(first.contains("termination", 4));

  // A second process (modelled by a second cache over the same directory)
  // reloads the persisted artefact without regenerating.
  fsm::MachineCache second(dir);
  const fsm::StateMachine& reloaded =
      second.machine_for("commit", 4, generate);
  EXPECT_EQ(generations, 1);
  EXPECT_EQ(second.stats().disk_hits, 1u);
  EXPECT_EQ(second.stats().misses, 0u);
  expect_identical(generated, reloaded, "disk round trip");
}

TEST(MachineCacheTest, CorruptEntryRegeneratesAndHeals) {
  const std::filesystem::path dir = fresh_cache_dir("asa_cache_corrupt");
  int generations = 0;
  const auto generate = [&] {
    ++generations;
    return commit::CommitModel(4).generate_state_machine();
  };

  {
    fsm::MachineCache cache(dir);
    (void)cache.machine_for("commit", 4, generate);
  }
  EXPECT_EQ(generations, 1);

  const std::filesystem::path file =
      dir / fsm::MachineCache::file_name("commit", 4);
  ASSERT_TRUE(std::filesystem::exists(file));
  std::ofstream(file) << "<statemachine this is not";

  {
    fsm::MachineCache cache(dir);
    (void)cache.machine_for("commit", 4, generate);
    EXPECT_EQ(generations, 2);  // Corrupt entry is a miss...
    EXPECT_EQ(cache.stats().disk_hits, 0u);
  }
  {
    fsm::MachineCache cache(dir);  // ...and was overwritten with a good one.
    (void)cache.machine_for("commit", 4, generate);
    EXPECT_EQ(generations, 2);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
  }
}

TEST(MachineCacheTest, CodeVersionInvalidatesStaleEntries) {
  const std::filesystem::path dir = fresh_cache_dir("asa_cache_version");
  std::filesystem::create_directories(dir);

  // A leftover artefact from a hypothetical previous code version: valid
  // name shape, wrong version suffix. The current version must ignore it.
  const std::string current = fsm::MachineCache::file_name("commit", 4);
  EXPECT_NE(current.find("_v" + std::to_string(fsm::kGenerationCodeVersion)),
            std::string::npos);
  const std::string stale = "commit_p4_v" +
                            std::to_string(fsm::kGenerationCodeVersion + 41) +
                            ".fsm.xml";
  std::ofstream(dir / stale) << "stale";

  int generations = 0;
  fsm::MachineCache cache(dir);
  (void)cache.machine_for("commit", 4, [&] {
    ++generations;
    return commit::CommitModel(4).generate_state_machine();
  });
  EXPECT_EQ(generations, 1);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir / current));
}

TEST(MachineCacheTest, CommitWrapperPersistsAcrossInstances) {
  const std::filesystem::path dir = fresh_cache_dir("asa_cache_commit");
  fsm::StateMachine generated;
  {
    commit::MachineCache cache(dir);
    generated = cache.machine_for(4, /*jobs=*/8);
    EXPECT_TRUE(cache.contains(4));
    EXPECT_EQ(cache.size(), 1u);
  }
  commit::MachineCache cache(dir);
  const fsm::StateMachine& reloaded = cache.machine_for(4);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  expect_identical(generated, reloaded, "commit wrapper round trip");
}

}  // namespace
}  // namespace asa_repro
