// Peer-set member corner cases driven with hand-crafted frames: node-lock
// serialisation (free/not_free), abort and recovery, history import, and
// Byzantine behaviour mechanics.
#include <gtest/gtest.h>

#include <memory>

#include "commit/machine_cache.hpp"
#include "commit/peer.hpp"

namespace asa_repro::commit {
namespace {

constexpr std::uint64_t kGuid = 5;

struct PeerHarness {
  explicit PeerHarness(std::uint32_t r = 4,
                       Behaviour behaviour = Behaviour::kHonest)
      : machine(cache.machine_for(r)),
        network(sched, sim::Rng(1), sim::LatencyModel{100, 100}) {
    std::vector<sim::NodeAddr> addrs;
    for (std::uint32_t i = 0; i < r; ++i) addrs.push_back(i);
    peer = std::make_unique<CommitPeer>(network, 0, addrs, machine,
                                        behaviour, &trace);
    // Capture the peer's outgoing traffic at the other addresses.
    for (std::uint32_t i = 1; i < r; ++i) {
      network.attach(i, [this, i](sim::NodeAddr, const std::string& data) {
        const auto msg = WireMessage::parse(data);
        if (msg.has_value()) outgoing[i].push_back(*msg);
      });
    }
    network.attach(100, [this](sim::NodeAddr, const std::string& data) {
      const auto msg = WireMessage::parse(data);
      if (msg.has_value()) client_inbox.push_back(*msg);
    });
  }

  void send(sim::NodeAddr from, WireMessage::Kind kind,
            std::uint64_t update_id, std::uint64_t request_id = 0) {
    WireMessage m{kind, kGuid, update_id,
                  request_id == 0 ? update_id : request_id, update_id * 10};
    network.send(from, 0, m.serialize());
    // Bounded advance: deliver the frame (100us latency) without firing
    // far-future timers such as abort scans.
    sched.run_until(sched.now() + 1'000);
  }

  std::size_t votes_sent_for(std::uint64_t update_id) const {
    std::size_t n = 0;
    for (const auto& [addr, msgs] : outgoing) {
      for (const auto& m : msgs) {
        if (m.kind == WireMessage::Kind::kVote && m.update_id == update_id) {
          ++n;
        }
      }
    }
    return n;
  }

  MachineCache cache;
  const fsm::StateMachine& machine;
  sim::Scheduler sched;
  sim::Network network;
  sim::Trace trace;
  std::unique_ptr<CommitPeer> peer;
  std::map<sim::NodeAddr, std::vector<WireMessage>> outgoing;
  std::vector<WireMessage> client_inbox;
};

TEST(Peer, UpdateWhileFreeVotesToAllOtherMembers) {
  PeerHarness h;
  h.send(100, WireMessage::Kind::kUpdate, 1);
  // One vote to each of the 3 other members, none to itself or the client.
  EXPECT_EQ(h.votes_sent_for(1), 3u);
  EXPECT_EQ(h.peer->stats().votes_sent, 1u);
}

TEST(Peer, SecondUpdateLockedOutUntilFirstFinishes) {
  PeerHarness h;
  h.send(100, WireMessage::Kind::kUpdate, 1);
  h.send(100, WireMessage::Kind::kUpdate, 2);
  // Update 2 arrived while update 1 holds the node lock: no vote for it.
  EXPECT_EQ(h.votes_sent_for(2), 0u);
  EXPECT_EQ(h.peer->live_instances(kGuid), 2u);

  // Drive update 1 to completion: 2 peer votes reach the threshold (with
  // the local vote), then 2 commits finish it.
  h.send(1, WireMessage::Kind::kVote, 1);
  h.send(2, WireMessage::Kind::kVote, 1);
  h.send(1, WireMessage::Kind::kCommit, 1);
  h.send(2, WireMessage::Kind::kCommit, 1);
  ASSERT_EQ(h.peer->history(kGuid).size(), 1u);
  // The freed lock passes to the pending update, which votes at once.
  EXPECT_EQ(h.votes_sent_for(2), 3u);
}

TEST(Peer, CompletionNotifiesTheClientOnce) {
  PeerHarness h;
  h.send(100, WireMessage::Kind::kUpdate, 1);
  h.send(1, WireMessage::Kind::kVote, 1);
  h.send(2, WireMessage::Kind::kVote, 1);
  h.send(1, WireMessage::Kind::kCommit, 1);
  h.send(2, WireMessage::Kind::kCommit, 1);
  ASSERT_EQ(h.client_inbox.size(), 1u);
  EXPECT_EQ(h.client_inbox[0].kind, WireMessage::Kind::kCommitted);
  EXPECT_EQ(h.client_inbox[0].update_id, 1u);
  // A resent update for the finished attempt is re-acknowledged (the
  // original notification may have been lost).
  h.send(100, WireMessage::Kind::kUpdate, 1);
  EXPECT_EQ(h.client_inbox.size(), 2u);
  // But unrelated traffic is not.
  h.send(1, WireMessage::Kind::kVote, 1);
  EXPECT_EQ(h.client_inbox.size(), 2u);
}

TEST(Peer, AbortFreesTheLockForPendingUpdates) {
  PeerHarness h;
  h.peer->enable_abort(5'000, 8'000);
  h.send(100, WireMessage::Kind::kUpdate, 1);  // Chooses, locks the node.
  h.send(100, WireMessage::Kind::kUpdate, 2);  // Pending.
  EXPECT_EQ(h.votes_sent_for(2), 0u);
  // No votes ever arrive for update 1: it stalls and is aborted.
  h.sched.run_until(h.sched.now() + 40'000);
  EXPECT_GE(h.peer->stats().aborted, 1u);
  // Update 2 inherited the lock and voted... unless it was aborted too
  // (both exceeded max_age). Verify via the lock: a THIRD update arriving
  // now must vote immediately.
  h.send(100, WireMessage::Kind::kUpdate, 3);
  EXPECT_EQ(h.votes_sent_for(3), 3u);
}

TEST(Peer, ImportHistoryOnlyIntoEmpty) {
  PeerHarness h;
  std::vector<CommitPeer::CommittedEntry> entries = {{10, 10, 100},
                                                     {11, 11, 110}};
  EXPECT_TRUE(h.peer->import_history(kGuid, entries));
  EXPECT_EQ(h.peer->history(kGuid).size(), 2u);
  // Non-empty: refuse.
  EXPECT_FALSE(h.peer->import_history(kGuid, {{12, 12, 120}}));
  EXPECT_EQ(h.peer->history(kGuid).size(), 2u);
}

TEST(Peer, CrashBehaviourIsSilent) {
  PeerHarness h(4, Behaviour::kCrash);
  h.send(100, WireMessage::Kind::kUpdate, 1);
  h.send(1, WireMessage::Kind::kVote, 1);
  EXPECT_TRUE(h.outgoing.empty() ||
              (h.outgoing[1].empty() && h.outgoing[2].empty()));
  EXPECT_TRUE(h.client_inbox.empty());
  EXPECT_EQ(h.peer->stats().votes_sent, 0u);
}

TEST(Peer, EquivocatorBlastsOncePerUpdate) {
  PeerHarness h(4, Behaviour::kEquivocator);
  h.send(1, WireMessage::Kind::kVote, 7);
  h.send(2, WireMessage::Kind::kVote, 7);  // Same update: no second blast.
  std::size_t votes = 0, commits = 0;
  for (const auto& [addr, msgs] : h.outgoing) {
    for (const auto& m : msgs) {
      votes += m.kind == WireMessage::Kind::kVote;
      commits += m.kind == WireMessage::Kind::kCommit;
    }
  }
  EXPECT_EQ(votes, 3u);    // One vote to each other member.
  EXPECT_EQ(commits, 3u);  // One commit to each other member.
}

TEST(Peer, WithholderOnlyReachesLowerHalf) {
  PeerHarness h(4, Behaviour::kWithholder);
  h.send(100, WireMessage::Kind::kUpdate, 1);
  // Peers are {0,1,2,3}; the withholder (0) sends votes only to the lower
  // half of the OTHER members by rank: ranks of 1,2,3 are 1,2,3; size/2=2,
  // so only rank<2 receives, i.e. peer 1.
  EXPECT_EQ(h.outgoing[1].size(), 1u);
  EXPECT_TRUE(h.outgoing[2].empty());
  EXPECT_TRUE(h.outgoing[3].empty());
}

TEST(Peer, CollectFinishedReleasesMemoryAndAbsorbsLateTraffic) {
  PeerHarness h;
  // Commit update 1 end to end.
  h.send(100, WireMessage::Kind::kUpdate, 1);
  h.send(1, WireMessage::Kind::kVote, 1);
  h.send(2, WireMessage::Kind::kVote, 1);
  h.send(1, WireMessage::Kind::kCommit, 1);
  h.send(2, WireMessage::Kind::kCommit, 1);
  ASSERT_EQ(h.peer->history(kGuid).size(), 1u);
  EXPECT_EQ(h.peer->resident_instances(kGuid), 1u);

  EXPECT_EQ(h.peer->collect_finished(), 1u);
  EXPECT_EQ(h.peer->resident_instances(kGuid), 0u);

  // A straggler vote for the settled update must not resurrect it.
  h.send(3, WireMessage::Kind::kVote, 1);
  EXPECT_EQ(h.peer->resident_instances(kGuid), 0u);
  // A resent update request is re-confirmed from the settled record.
  const std::size_t before = h.client_inbox.size();
  h.send(100, WireMessage::Kind::kUpdate, 1);
  ASSERT_EQ(h.client_inbox.size(), before + 1);
  EXPECT_EQ(h.client_inbox.back().kind, WireMessage::Kind::kCommitted);
  EXPECT_EQ(h.peer->resident_instances(kGuid), 0u);
  // History is untouched.
  EXPECT_EQ(h.peer->history(kGuid).size(), 1u);
}

TEST(Peer, CollectFinishedSkipsLiveInstances) {
  PeerHarness h;
  h.send(100, WireMessage::Kind::kUpdate, 1);  // In progress.
  EXPECT_EQ(h.peer->collect_finished(), 0u);
  EXPECT_EQ(h.peer->resident_instances(kGuid), 1u);
}

TEST(Peer, HistoryForUnknownGuidIsEmpty) {
  PeerHarness h;
  EXPECT_TRUE(h.peer->history(999).empty());
  EXPECT_EQ(h.peer->live_instances(999), 0u);
}

}  // namespace
}  // namespace asa_repro::commit
