// Trace-equivalence checking (find_divergence), and the pipeline property
// that merging preserves behaviour for the real commit machines.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "core/equivalence.hpp"
#include "core/minimize.hpp"

namespace asa_repro::fsm {
namespace {

State state(std::string name, std::vector<Transition> transitions,
            bool is_final = false) {
  State s;
  s.name = std::move(name);
  s.transitions = std::move(transitions);
  s.is_final = is_final;
  return s;
}

Transition tr(MessageId m, StateId target, ActionList actions = {}) {
  Transition t;
  t.message = m;
  t.actions = std::move(actions);
  t.target = target;
  return t;
}

TEST(Equivalence, IdenticalMachinesEquivalent) {
  const StateMachine m({"a"}, {state("s", {tr(0, 0)})}, 0, kNoState);
  EXPECT_TRUE(trace_equivalent(m, m));
}

TEST(Equivalence, DetectsActionDifference) {
  const StateMachine a({"m"}, {state("s", {tr(0, 0, {"x"})})}, 0, kNoState);
  const StateMachine b({"m"}, {state("s", {tr(0, 0, {"y"})})}, 0, kNoState);
  const auto d = find_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->trace.size(), 1u);
  EXPECT_NE(d->reason.find("actions"), std::string::npos);
}

TEST(Equivalence, DetectsApplicabilityDifference) {
  const StateMachine a({"m"}, {state("s", {tr(0, 0)})}, 0, kNoState);
  const StateMachine b({"m"}, {state("s", {})}, 0, kNoState);
  const auto d = find_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->reason.find("applicability"), std::string::npos);
}

TEST(Equivalence, DetectsFinalityDifference) {
  const StateMachine a({"m"}, {state("s", {}, true)}, 0, 0);
  const StateMachine b({"m"}, {state("s", {}, false)}, 0, kNoState);
  const auto d = find_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->trace.empty());  // Diverges at the start state.
  EXPECT_NE(d->reason.find("finality"), std::string::npos);
}

TEST(Equivalence, DetectsVocabularyMismatch) {
  const StateMachine a({"m"}, {state("s", {})}, 0, kNoState);
  const StateMachine b({"n"}, {state("s", {})}, 0, kNoState);
  ASSERT_TRUE(find_divergence(a, b).has_value());
}

TEST(Equivalence, DeepDivergenceFound) {
  // Machines agree for two steps, then differ in an action.
  const StateMachine a(
      {"m"},
      {state("0", {tr(0, 1)}), state("1", {tr(0, 2)}),
       state("2", {tr(0, 2, {"boom"})})},
      0, kNoState);
  const StateMachine b(
      {"m"},
      {state("0", {tr(0, 1)}), state("1", {tr(0, 2)}),
       state("2", {tr(0, 2, {"fizz"})})},
      0, kNoState);
  const auto d = find_divergence(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->trace.size(), 3u);  // Shortest witness (BFS).
}

TEST(Equivalence, StructurallyDifferentButBisimilar) {
  // b unrolls a's self-loop once: same traces.
  const StateMachine a({"m"}, {state("s", {tr(0, 0, {"x"})})}, 0, kNoState);
  const StateMachine b(
      {"m"},
      {state("s0", {tr(0, 1, {"x"})}), state("s1", {tr(0, 0, {"x"})})}, 0,
      kNoState);
  EXPECT_TRUE(trace_equivalent(a, b));
}

class MergePreservesBehaviour : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(MergePreservesBehaviour, PrunedAndMergedCommitMachinesAgree) {
  const std::uint32_t r = GetParam();
  commit::CommitModel model(r);
  GenerationOptions unmerged_options;
  unmerged_options.merge_equivalent = false;
  const StateMachine pruned = model.generate_state_machine(unmerged_options);
  const StateMachine merged = model.generate_state_machine();
  ASSERT_GT(pruned.state_count(), merged.state_count());
  const auto d = find_divergence(pruned, merged);
  EXPECT_FALSE(d.has_value()) << d->reason;
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, MergePreservesBehaviour,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u, 13u));

TEST(Equivalence, MinimizeOutputIsMinimal) {
  // Minimizing the merged commit machine again changes nothing.
  commit::CommitModel model(4);
  const StateMachine merged = model.generate_state_machine();
  EXPECT_EQ(minimize(merged).state_count(), merged.state_count());
}

}  // namespace
}  // namespace asa_repro::fsm
