// Deployment-mode differential testing (paper sections 4.2-4.3): the same
// protocol scenario executed with interpreted machines and with statically
// compiled generated code must produce byte-identical outcomes — histories,
// stats, and message counts — because the simulation is deterministic and
// the two machine implementations are behaviourally equal.
#include <gtest/gtest.h>

#include <memory>

#include "commit/commit_model.hpp"
#include "commit/endpoint.hpp"
#include "commit/generated_driver.hpp"
#include "commit/machine_cache.hpp"
#include "commit/peer.hpp"
#include "core/dynamic_loader.hpp"
#include "core/render/code_renderer.hpp"

namespace asa_repro::commit {
namespace {

constexpr std::uint64_t kGuid = 42;

struct Outcome {
  std::vector<std::vector<std::uint64_t>> histories;  // Per peer.
  std::uint64_t network_frames = 0;
  std::uint64_t total_votes_sent = 0;
  int committed = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome run_scenario(bool use_generated_driver, std::uint64_t seed,
                     int clients) {
  static MachineCache cache;
  const fsm::StateMachine& machine = cache.machine_for(4);
  sim::Scheduler sched;
  sim::Network network(sched, sim::Rng(seed), sim::LatencyModel{500, 5'000});

  std::vector<sim::NodeAddr> addrs{0, 1, 2, 3};
  std::vector<std::unique_ptr<CommitPeer>> peers;
  for (sim::NodeAddr a : addrs) {
    peers.push_back(
        std::make_unique<CommitPeer>(network, a, addrs, machine));
    if (use_generated_driver) {
      peers.back()->set_driver_factory(make_generated_r4_driver_factory());
    }
    peers.back()->enable_abort(50'000, 60'000);
  }

  RetryPolicy policy;
  policy.base_timeout = 70'000;
  policy.max_attempts = 20;
  Outcome outcome;
  std::vector<std::unique_ptr<CommitEndpoint>> endpoints;
  for (int c = 0; c < clients; ++c) {
    endpoints.push_back(std::make_unique<CommitEndpoint>(
        network, static_cast<sim::NodeAddr>(100 + c), addrs, 1, policy,
        sim::Rng(seed * 31 + c)));
    endpoints.back()->submit(kGuid, 7'000 + c,
                             [&outcome](const CommitResult& r) {
                               outcome.committed += r.committed ? 1 : 0;
                             });
  }
  sched.run();

  for (const auto& p : peers) {
    std::vector<std::uint64_t> h;
    for (const auto& e : p->history(kGuid)) h.push_back(e.update_id);
    outcome.histories.push_back(std::move(h));
    outcome.total_votes_sent += p->stats().votes_sent;
  }
  outcome.network_frames = network.stats().sent;
  return outcome;
}

class DriverDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DriverDifferential, InterpreterAndGeneratedCodeAgreeExactly) {
  const std::uint64_t seed = GetParam();
  for (int clients : {1, 3}) {
    const Outcome interpreted = run_scenario(false, seed, clients);
    const Outcome generated = run_scenario(true, seed, clients);
    EXPECT_EQ(interpreted.committed, clients);
    EXPECT_TRUE(interpreted == generated)
        << "seed " << seed << ", " << clients << " client(s): deployment "
        << "modes diverged (frames " << interpreted.network_frames << " vs "
        << generated.network_frames << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverDifferential,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(GeneratedR4Driver, StandaloneCommitPath) {
  GeneratedR4Driver driver;
  EXPECT_FALSE(driver.finished());
  EXPECT_EQ(driver.deliver(kUpdate),
            (fsm::ActionList{"vote", "not_free"}));
  EXPECT_TRUE(driver.deliver(kVote).empty());
  EXPECT_EQ(driver.deliver(kVote), (fsm::ActionList{"commit"}));
  EXPECT_TRUE(driver.deliver(kCommit).empty());
  EXPECT_EQ(driver.deliver(kCommit), (fsm::ActionList{"free"}));
  EXPECT_TRUE(driver.finished());
  // Absorbing afterwards.
  EXPECT_TRUE(driver.deliver(kVote).empty());
}

TEST(DynamicallyLoadedDriver, PeerRunsDlopenedMachine) {
  // The full section 4.3 loop inside the runtime: render source for r=4,
  // compile it to a shared object, and give the peer set a driver factory
  // that instantiates machines from the loaded factory symbol. A commit
  // must run end to end.
  const fsm::StateMachine machine =
      commit::CommitModel(4).generate_state_machine();
  fsm::CodeGenOptions options;
  options.class_name = "DynCommit";
  options.base_class = "asa_repro::fsm::DynamicFsmBase";
  options.action_style = fsm::CodeGenOptions::ActionStyle::kSink;
  options.implement_api = true;
  options.emit_factory = true;
  options.includes = {"core/generated_api.hpp"};
  const std::string source = fsm::CodeRenderer(options).render(machine);

  fsm::DynamicCompiler::Options copts;
  copts.include_dir = ASA_SRC_DIR;
  auto compiler = std::make_shared<fsm::DynamicCompiler>(copts);
  if (!compiler->available()) GTEST_SKIP() << "no compiler on host";
  auto loaded = std::make_shared<fsm::DynamicCompiler::Result>(
      compiler->compile_and_load(source));
  ASSERT_TRUE(loaded->fsm.has_value()) << loaded->error;

  sim::Scheduler sched;
  sim::Network network(sched, sim::Rng(6), sim::LatencyModel{500, 2'000});
  std::vector<sim::NodeAddr> addrs{0, 1, 2, 3};
  std::vector<std::unique_ptr<CommitPeer>> peers;
  for (sim::NodeAddr a : addrs) {
    peers.push_back(std::make_unique<CommitPeer>(network, a, addrs, machine));
    // One compiled shared object serves the whole peer set; each protocol
    // instance gets its own machine minted from the loaded factory.
    peers.back()->set_driver_factory([loaded] {
      return std::make_unique<GeneratedApiDriver>(
          loaded->fsm->create_instance());
    });
  }

  // One update through the dlopen-driven peer set.
  const WireMessage update{WireMessage::Kind::kUpdate, 3, 500, 500, 42};
  for (sim::NodeAddr a : addrs) network.send(99, a, update.serialize());
  sched.run();
  for (const auto& p : peers) {
    ASSERT_EQ(p->history(3).size(), 1u);
    EXPECT_EQ(p->history(3)[0].payload, 42u);
  }
}

TEST(InterpreterDriverTest, MatchesMachineSemantics) {
  MachineCache cache;
  const fsm::StateMachine& machine = cache.machine_for(4);
  InterpreterDriver driver(machine);
  EXPECT_EQ(driver.deliver(kUpdate), (fsm::ActionList{"vote", "not_free"}));
  EXPECT_FALSE(driver.finished());
  // Inapplicable: empty.
  EXPECT_TRUE(driver.deliver(kUpdate).empty());
}

}  // namespace
}  // namespace asa_repro::commit
