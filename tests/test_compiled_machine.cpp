// Dense-table compiled dispatch backend (core/compiled_machine.hpp): layout
// packing, the perfect-hash event decoder, step-for-step agreement with the
// interpreter on edge machines and family members, the round-trip
// equivalence obligation, the reset-fused benchmark table, and the
// table-backend source renderer up through compile-and-dlopen.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "commit/commit_efsm.hpp"
#include "commit/commit_model.hpp"
#include "core/compiled_machine.hpp"
#include "core/dynamic_loader.hpp"
#include "core/efsm/efsm.hpp"
#include "core/equivalence.hpp"
#include "core/interpreter.hpp"
#include "core/render/table_renderer.hpp"
#include "sim/rng.hpp"

namespace asa_repro::fsm {
namespace {

StateMachine commit_machine(std::uint32_t r) {
  return commit::CommitModel(r).generate_state_machine();
}

/// Deliver `steps` random messages to a CompiledInstance and an FsmInstance
/// over the same machine and assert step-for-step agreement: applicability,
/// action lists, state names, finality. `walks` restarts exercise reset().
void expect_matches_interpreter(const StateMachine& machine,
                                std::uint64_t seed, int walks, int steps) {
  const CompiledMachine compiled = CompiledMachine::compile(machine);
  sim::Rng rng(seed);
  for (int walk = 0; walk < walks; ++walk) {
    CompiledInstance fast(compiled);
    FsmInstance interp(machine);
    for (int step = 0; step < steps; ++step) {
      const auto m =
          static_cast<MessageId>(rng.below(machine.messages().size()));
      const CompiledInstance::Delivery d = fast.deliver(m);
      const Transition* t = interp.deliver(m);
      ASSERT_EQ(d.applicable, t != nullptr)
          << "walk " << walk << " step " << step;
      if (t != nullptr) {
        ASSERT_EQ(d.count, t->actions.size());
        for (std::uint32_t i = 0; i < d.count; ++i) {
          ASSERT_EQ(compiled.action_names()[d.ids[i]], t->actions[i]);
        }
      } else {
        ASSERT_EQ(d.count, 0u);
      }
      ASSERT_EQ(fast.state_name(), interp.state_name());
      ASSERT_EQ(fast.finished(), interp.finished());
      if (interp.finished()) {
        fast.reset();
        interp.reset();
      }
    }
  }
}

// ---- Edge machines the commit family never produces. ----

TEST(CompiledMachine, SingleStateFinalMachine) {
  State only;
  only.name = "done";
  only.is_final = true;
  const StateMachine machine{{"ping", "pong"}, {only}, 0, 0};
  const CompiledMachine compiled = CompiledMachine::compile(machine);
  EXPECT_EQ(compiled.state_count(), 1u);
  EXPECT_EQ(compiled.event_count(), 2u);
  EXPECT_EQ(compiled.arena_size(), 0u);
  // Every cell is a synthetic self-loop: delivery is a no-op.
  CompiledInstance inst(compiled);
  EXPECT_TRUE(inst.finished());
  const auto d = inst.deliver(1);
  EXPECT_FALSE(d.applicable);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(inst.state_name(), "done");
  expect_matches_interpreter(machine, 11, 4, 16);
}

TEST(CompiledMachine, SinkOnlyMachine) {
  // Every state funnels into a sink with no exits (not final: messages keep
  // arriving and keep being ignored — the degenerate always-running FSM).
  State a;
  a.name = "a";
  State sink;
  sink.name = "sink";
  Transition t;
  t.message = 0;
  t.target = 1;
  t.actions = {"drop"};
  a.transitions.push_back(t);
  const StateMachine machine{{"only"}, {a, sink}, 0, kNoState};
  const CompiledMachine compiled = CompiledMachine::compile(machine);
  CompiledInstance inst(compiled);
  EXPECT_TRUE(inst.deliver(0).applicable);
  EXPECT_EQ(inst.state_name(), "sink");
  EXPECT_FALSE(inst.deliver(0).applicable);
  EXPECT_EQ(inst.state_name(), "sink");
  EXPECT_FALSE(inst.finished());
  expect_matches_interpreter(machine, 22, 4, 16);
}

TEST(CompiledMachine, MaxEventIdOnlyTransitions) {
  // 9 messages but transitions only on the last id: the table must address
  // the full event range, and low ids must all be synthetic self-loops.
  std::vector<std::string> messages;
  for (int i = 0; i < 9; ++i) messages.push_back("m" + std::to_string(i));
  State ping;
  ping.name = "ping";
  State pong;
  pong.name = "pong";
  Transition t;
  t.message = 8;
  t.target = 1;
  t.actions = {"flip"};
  ping.transitions.push_back(t);
  t.target = 0;
  pong.transitions.push_back(t);
  const StateMachine machine{messages, {ping, pong}, 0, kNoState};
  const CompiledMachine compiled = CompiledMachine::compile(machine);
  for (MessageId e = 0; e < 8; ++e) {
    EXPECT_FALSE(CompiledMachine::applicable(compiled.record(0, e).span));
  }
  EXPECT_TRUE(CompiledMachine::applicable(compiled.record(0, 8).span));
  expect_matches_interpreter(machine, 33, 4, 32);
}

// ---- Family members, including the EFSM-expanded r=16 machine. ----

TEST(CompiledMachine, MatchesInterpreterOnCommitFamily) {
  for (const std::uint32_t r : {4u, 7u}) {
    expect_matches_interpreter(commit_machine(r), 1234 + r, 20, 200);
  }
}

TEST(CompiledMachine, MatchesInterpreterOnExpandedEfsmR16) {
  const Efsm efsm = commit::make_commit_efsm();
  const StateMachine machine =
      expand_to_fsm(efsm, commit::commit_efsm_params(16), 1u << 20);
  expect_matches_interpreter(machine, 16, 10, 400);
}

TEST(CompiledMachine, RoundTripIsTraceEquivalent) {
  for (const std::uint32_t r : {4u, 7u, 10u}) {
    const StateMachine machine = commit_machine(r);
    const StateMachine rebuilt =
        CompiledMachine::compile(machine).to_state_machine();
    const auto divergence = find_divergence(machine, rebuilt);
    EXPECT_FALSE(divergence.has_value())
        << "r=" << r << ": " << divergence->reason << " after "
        << format_trace(machine, divergence->trace);
  }
}

// ---- The reset-fused benchmark table. ----

TEST(CompiledMachine, FusedTableMatchesDeliverResetHarness) {
  const StateMachine machine = commit_machine(4);
  const CompiledMachine compiled = CompiledMachine::compile(machine);
  const std::vector<CompiledRecord> fused = reset_fused_table(compiled);

  CompiledInstance inst(compiled);
  std::uint32_t fused_row = compiled.start() * compiled.event_count();
  std::uint64_t harness_actions = 0;
  std::uint64_t fused_actions = 0;
  sim::Rng rng(0xBEEF);
  for (int step = 0; step < 4096; ++step) {
    const auto m =
        static_cast<MessageId>(rng.below(machine.messages().size()));
    harness_actions += inst.deliver(m).count;
    if (inst.finished()) inst.reset();

    const CompiledRecord rec = fused[fused_row + m];
    fused_actions += rec.span;
    fused_row = rec.next;

    // `next` is a pre-multiplied row offset; divide to recover the state.
    ASSERT_EQ(fused_row / compiled.event_count(), inst.state())
        << "step " << step;
    ASSERT_EQ(fused_row % compiled.event_count(), 0u);
  }
  EXPECT_EQ(fused_actions, harness_actions);
}

// ---- The perfect-hash event decoder. ----

TEST(EventDecoder, RoundTripsVocabulary) {
  const StateMachine machine = commit_machine(4);
  const CompiledMachine compiled = CompiledMachine::compile(machine);
  const EventDecoder& decoder = compiled.decoder();
  for (MessageId e = 0; e < machine.messages().size(); ++e) {
    const auto id = decoder.decode(machine.messages()[e]);
    ASSERT_TRUE(id.has_value()) << machine.messages()[e];
    EXPECT_EQ(*id, e);
  }
  EXPECT_FALSE(decoder.decode("").has_value());
  EXPECT_FALSE(decoder.decode("no_such_message").has_value());
  EXPECT_FALSE(decoder.decode("vote ").has_value());
}

TEST(EventDecoder, HandlesLargeVocabularies) {
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) names.push_back("msg_" + std::to_string(i));
  const EventDecoder decoder(names);
  EXPECT_GE(decoder.table_size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto id = decoder.decode(names[i]);
    ASSERT_TRUE(id.has_value()) << names[i];
    EXPECT_EQ(*id, i);
  }
  EXPECT_FALSE(decoder.decode("msg_200").has_value());
}

TEST(EventDecoder, RejectsDuplicateNames) {
  EXPECT_THROW(EventDecoder({"a", "b", "a"}), std::invalid_argument);
}

// ---- Packing limits. ----

TEST(CompiledMachine, PackingBounds) {
  EXPECT_EQ(kCompiledMaxActions, 15u);
  // A span with the largest offset and count still fits below the
  // applicable bit.
  const std::uint32_t span = kCompiledApplicableBit |
                             (kCompiledMaxArenaOffset << kCompiledCountBits) |
                             kCompiledMaxActions;
  EXPECT_TRUE(CompiledMachine::applicable(span));
  EXPECT_EQ(CompiledMachine::offset_of(span), kCompiledMaxArenaOffset);
  EXPECT_EQ(CompiledMachine::count_of(span), kCompiledMaxActions);
}

TEST(CompiledMachine, RejectsOverlongActionLists) {
  State s;
  s.name = "s";
  Transition t;
  t.message = 0;
  t.target = 0;
  for (std::uint32_t i = 0; i <= kCompiledMaxActions; ++i) {
    t.actions.push_back("a" + std::to_string(i));
  }
  s.transitions.push_back(t);
  const StateMachine machine{{"m"}, {s}, 0, kNoState};
  EXPECT_THROW(CompiledMachine::compile(machine), std::invalid_argument);
}

TEST(CompiledMachine, RejectsDuplicateTransitions) {
  State s;
  s.name = "s";
  Transition t;
  t.message = 0;
  t.target = 0;
  s.transitions.push_back(t);
  s.transitions.push_back(t);
  const StateMachine machine{{"m"}, {s}, 0, kNoState};
  EXPECT_THROW(CompiledMachine::compile(machine), std::invalid_argument);
}

TEST(CompiledMachine, RejectsOutOfRangeTarget) {
  State s;
  s.name = "s";
  Transition t;
  t.message = 0;
  t.target = 7;
  s.transitions.push_back(t);
  const StateMachine machine{{"m"}, {s}, 0, kNoState};
  EXPECT_THROW(CompiledMachine::compile(machine), std::invalid_argument);
}

// ---- The table-backend source renderer. ----

TEST(TableCodeRenderer, EmitsDenseTables) {
  const StateMachine machine = commit_machine(4);
  CodeGenOptions options;
  options.class_name = "CommitTableR4";
  options.namespace_name = "gen";
  options.base_class = "asa_repro::commit::CommitActions";
  options.includes = {"commit/actions.hpp"};
  const std::string code = TableCodeRenderer(options).render(machine);

  EXPECT_NE(code.find("class CommitTableR4 : public "
                      "asa_repro::commit::CommitActions {"),
            std::string::npos);
  EXPECT_NE(code.find("kStateCount = 33;"), std::string::npos);
  EXPECT_NE(code.find("kEventCount = 5;"), std::string::npos);
  EXPECT_NE(code.find("kMsgNotFree = 4,"), std::string::npos);
  EXPECT_NE(code.find("std::uint16_t kNext[kStateCount * kEventCount]"),
            std::string::npos);
  EXPECT_NE(code.find("std::uint32_t kSpan[kStateCount * kEventCount]"),
            std::string::npos);
  EXPECT_NE(code.find("std::uint16_t kArena["), std::string::npos);
  EXPECT_NE(code.find("void receiveUpdate() { receive(kMsgUpdate); }"),
            std::string::npos);
  EXPECT_NE(code.find("sendVote(); break;"), std::string::npos);
  // No per-state switch on the hot path; the only switch dispatches
  // action ids.
  EXPECT_EQ(code.find("switch (state_)"), std::string::npos);
}

TEST(TableCodeRenderer, DeterministicOutput) {
  const StateMachine machine = commit_machine(4);
  EXPECT_EQ(TableCodeRenderer().render(machine),
            TableCodeRenderer().render(machine));
}

TEST(TableCodeRenderer, CompiledSourceMatchesInterpreter) {
  const StateMachine machine = commit_machine(4);
  CodeGenOptions options;
  options.class_name = "GeneratedCommit";
  options.namespace_name = "gen";
  options.base_class = "asa_repro::fsm::DynamicFsmBase";
  options.action_style = CodeGenOptions::ActionStyle::kSink;
  options.implement_api = true;
  options.emit_factory = true;
  options.includes = {"core/generated_api.hpp"};
  const std::string source = TableCodeRenderer(options).render(machine);

  DynamicCompiler::Options copts;
  copts.include_dir = std::string(ASA_SRC_DIR);
  DynamicCompiler compiler(copts);
  if (!compiler.available()) {
    GTEST_SKIP() << "no C++ compiler on this host";
  }
  DynamicCompiler::Result result = compiler.compile_and_load(source);
  ASSERT_TRUE(result.fsm.has_value()) << result.error;
  GeneratedFsmApi& loaded = result.fsm->machine();

  std::vector<std::string> loaded_actions;
  loaded.set_action_sink(
      [](void* ctx, const char* action) {
        static_cast<std::vector<std::string>*>(ctx)->push_back(action);
      },
      &loaded_actions);

  sim::Rng rng(4321);
  for (int walk = 0; walk < 50; ++walk) {
    loaded.reset();
    FsmInstance interp(machine);
    for (int step = 0; step < 200; ++step) {
      const auto m =
          static_cast<MessageId>(rng.below(machine.messages().size()));
      loaded_actions.clear();
      loaded.receive(m);
      const Transition* t = interp.deliver(m);
      const std::vector<std::string> expected =
          t == nullptr ? std::vector<std::string>{} : t->actions;
      ASSERT_EQ(loaded_actions, expected)
          << "walk " << walk << " step " << step;
      ASSERT_STREQ(loaded.state_name(), interp.state_name().c_str());
      ASSERT_EQ(loaded.finished(), interp.finished());
      if (interp.finished()) break;
    }
  }
}

}  // namespace
}  // namespace asa_repro::fsm
