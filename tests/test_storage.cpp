// Storage-layer building blocks: PIDs/GUIDs, replica key generation,
// storage-node fault injection, wire frames, and history agreement.
#include <gtest/gtest.h>

#include "storage/key_gen.hpp"
#include "storage/maintenance.hpp"
#include "storage/pid.hpp"
#include "storage/storage_messages.hpp"
#include "storage/storage_node.hpp"
#include "storage/version_history.hpp"

namespace asa_repro::storage {
namespace {

TEST(Pid, ContentAddressing) {
  const Block data = block_from("hello asa");
  const Pid pid = Pid::of(data);
  EXPECT_TRUE(pid.matches(data));
  EXPECT_FALSE(pid.matches(block_from("hello asb")));
  EXPECT_EQ(pid, Pid::of(block_from("hello asa")));
  EXPECT_NE(pid, Pid::of(block_from("other")));
}

TEST(Pid, EmptyBlockHasAPid) {
  const Block empty;
  const Pid pid = Pid::of(empty);
  EXPECT_TRUE(pid.matches(empty));
  EXPECT_EQ(pid.to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Guid, NamedGuidsAreStable) {
  EXPECT_EQ(Guid::named("file.txt"), Guid::named("file.txt"));
  EXPECT_NE(Guid::named("file.txt"), Guid::named("file2.txt"));
  EXPECT_NE(Guid::named("a").to_uint64(), Guid::named("b").to_uint64());
}

TEST(KeyGen, FirstKeyIsBaseAndCountMatches) {
  const p2p::NodeId base = p2p::NodeId::hash_of("pid");
  const auto keys = replica_keys(base, 4);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], base);
}

TEST(KeyGen, KeysEvenlySpaced) {
  const p2p::NodeId base = p2p::NodeId::hash_of("pid");
  for (std::uint32_t r : {3u, 4u, 7u, 13u}) {
    const auto keys = replica_keys(base, r);
    // Consecutive gaps differ by at most 1 (integer division remainder).
    p2p::NodeId min_gap, max_gap;
    bool first = true;
    for (std::uint32_t i = 0; i < r; ++i) {
      const p2p::NodeId gap =
          keys[(i + 1) % r].minus(keys[i]);
      if (first || gap < min_gap) min_gap = gap;
      if (first || max_gap < gap) max_gap = gap;
      first = false;
    }
    EXPECT_TRUE(max_gap.minus(min_gap) <= p2p::NodeId::from_uint64(1))
        << "r=" << r;
  }
}

TEST(KeyGen, DeterministicAcrossCalls) {
  const p2p::NodeId base = p2p::NodeId::hash_of("x");
  EXPECT_EQ(replica_keys(base, 7), replica_keys(base, 7));
}

// ---- StorageNode. ----

TEST(StorageNodeTest, PutGetRoundTrip) {
  StorageNode node;
  const Block data = block_from("payload");
  const Pid pid = Pid::of(data);
  EXPECT_TRUE(node.put(pid, data));
  const auto got = node.get(pid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
  EXPECT_TRUE(node.holds_intact(pid));
}

TEST(StorageNodeTest, MissReturnsNothing) {
  StorageNode node;
  EXPECT_FALSE(node.get(Pid::of(block_from("nope"))).has_value());
  EXPECT_EQ(node.stats().misses, 1u);
}

TEST(StorageNodeTest, CorruptNodeServesTamperedBytes) {
  StorageNode node;
  const Block data = block_from("precious");
  const Pid pid = Pid::of(data);
  node.put(pid, data);
  node.set_corrupt(true);
  const auto got = node.get(pid);
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(pid.matches(*got));  // Hash check catches it.
  EXPECT_EQ(node.stats().corrupt_serves, 1u);
  // The stored copy itself is untouched (lying on the wire, not on disk).
  EXPECT_TRUE(node.holds_intact(pid));
}

TEST(StorageNodeTest, RefusesWritesWhenConfigured) {
  StorageNode node;
  node.set_refuse_writes(true);
  const Block data = block_from("x");
  EXPECT_FALSE(node.put(Pid::of(data), data));
  EXPECT_EQ(node.block_count(), 0u);
}

TEST(StorageNodeTest, CorruptStoredDamagesAtRest) {
  StorageNode node;
  const Block data = block_from("at rest");
  const Pid pid = Pid::of(data);
  node.put(pid, data);
  node.corrupt_stored(pid);
  EXPECT_FALSE(node.holds_intact(pid));
}

// ---- Wire frames. ----

TEST(StorageFrame, RoundTripAllOps) {
  for (const auto op :
       {StorageFrame::Op::kPut, StorageFrame::Op::kPutAck,
        StorageFrame::Op::kGet, StorageFrame::Op::kGetReply,
        StorageFrame::Op::kHistoryGet, StorageFrame::Op::kHistoryReply}) {
    StorageFrame f;
    f.op = op;
    f.ticket = 0xDEADBEEF12345678ull;
    f.id = crypto::Sha1::hash("some id");
    f.status = 1;
    f.payload = {1, 2, 3, 250, 251};
    const auto parsed = StorageFrame::parse(f.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, f.op);
    EXPECT_EQ(parsed->ticket, f.ticket);
    EXPECT_EQ(parsed->id, f.id);
    EXPECT_EQ(parsed->status, f.status);
    EXPECT_EQ(parsed->payload, f.payload);
  }
}

TEST(StorageFrame, EmptyPayloadAllowed) {
  StorageFrame f;
  f.op = StorageFrame::Op::kGet;
  const auto parsed = StorageFrame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(StorageFrame, RejectsGarbage) {
  EXPECT_FALSE(StorageFrame::parse("").has_value());
  EXPECT_FALSE(StorageFrame::parse("short").has_value());
  EXPECT_FALSE(StorageFrame::parse(std::string(40, 'X')).has_value());
  // Bad op byte.
  StorageFrame f;
  std::string wire = f.serialize();
  wire[1] = 9;
  EXPECT_FALSE(StorageFrame::parse(wire).has_value());
}

TEST(HistoryEncoding, RoundTrip) {
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> entries = {
      {1, 100}, {2, 200}, {0xFFFFFFFFFFFFFFFFull, 0}};
  EXPECT_EQ(decode_history(encode_history(entries)), entries);
  EXPECT_TRUE(decode_history({}).empty());
}

// ---- History agreement (the f+1 read rule of section 2.2). ----

TEST(AgreeHistory, UnanimousPeersAgreeFully) {
  const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      histories = {{{1, 10}, {2, 20}}, {{1, 10}, {2, 20}},
                   {{1, 10}, {2, 20}}, {{1, 10}, {2, 20}}};
  EXPECT_EQ(agree_history(histories, 1),
            (std::vector<std::uint64_t>{10, 20}));
}

TEST(AgreeHistory, SingleLyingPeerOutvoted) {
  const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      histories = {{{1, 10}, {2, 20}},
                   {{1, 10}, {2, 20}},
                   {{1, 10}, {2, 20}},
                   {{1, 666}, {2, 667}}};  // Byzantine member lies.
  EXPECT_EQ(agree_history(histories, 1),
            (std::vector<std::uint64_t>{10, 20}));
}

TEST(AgreeHistory, LaggingPeerShortensNothing) {
  // One peer is behind; f+1 = 2 of the remaining still agree on the tail.
  const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      histories = {{{1, 10}, {2, 20}}, {{1, 10}, {2, 20}}, {{1, 10}}};
  EXPECT_EQ(agree_history(histories, 1),
            (std::vector<std::uint64_t>{10, 20}));
}

TEST(AgreeHistory, NoQuorumStopsPrefix) {
  const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      histories = {{{1, 10}, {2, 20}}, {{1, 10}, {3, 30}}, {{1, 10}}};
  // Position 0 agreed (10); position 1 splits 1-1 with f=1 needing 2.
  EXPECT_EQ(agree_history(histories, 1), (std::vector<std::uint64_t>{10}));
}

TEST(AgreeHistory, RequestDeduplicationCollapsesRetries) {
  // A retried update committed twice on one peer counts once.
  const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      histories = {{{7, 70}, {7, 70}, {8, 80}},
                   {{7, 70}, {8, 80}},
                   {{7, 70}, {8, 80}}};
  EXPECT_EQ(agree_history(histories, 1),
            (std::vector<std::uint64_t>{70, 80}));
}

TEST(AgreeHistory, EmptyInputs) {
  EXPECT_TRUE(agree_history({}, 1).empty());
  EXPECT_TRUE(agree_history({{}, {}, {}}, 1).empty());
}

// ---- ReplicaMaintainer over plain nodes. ----

TEST(Maintainer, RepairsMissingAndCorruptReplicas) {
  // Four nodes addressed by the i-th replica key of the block.
  const Block data = block_from("maintained");
  const Pid pid = Pid::of(data);
  const auto keys = replica_keys(pid.as_key(), 4);
  std::map<p2p::NodeId, StorageNode> nodes;
  for (const auto& k : keys) nodes[k];  // Default-construct.
  for (const auto& k : keys) nodes[k].put(pid, data);

  // Damage two replicas.
  nodes[keys[1]].drop(pid);
  nodes[keys[2]].corrupt_stored(pid);

  ReplicaMaintainer maintainer(
      [&](const p2p::NodeId& key) -> StorageNode* {
        const auto it = nodes.find(key);
        return it == nodes.end() ? nullptr : &it->second;
      },
      4);
  maintainer.track(pid);
  const std::size_t repaired = maintainer.scan();
  EXPECT_EQ(repaired, 2u);
  for (const auto& k : keys) {
    EXPECT_TRUE(nodes[k].holds_intact(pid));
  }
  EXPECT_EQ(maintainer.stats().missing_found, 1u);
  EXPECT_EQ(maintainer.stats().corrupt_found, 1u);
  // A second scan finds nothing to do.
  EXPECT_EQ(maintainer.scan(), 0u);
}

TEST(Maintainer, UnrepairableWhenNoIntactCopy) {
  const Block data = block_from("goner");
  const Pid pid = Pid::of(data);
  const auto keys = replica_keys(pid.as_key(), 4);
  std::map<p2p::NodeId, StorageNode> nodes;
  for (const auto& k : keys) {
    nodes[k].put(pid, data);
    nodes[k].corrupt_stored(pid);
  }
  ReplicaMaintainer maintainer(
      [&](const p2p::NodeId& key) -> StorageNode* { return &nodes.at(key); },
      4);
  maintainer.track(pid);
  EXPECT_EQ(maintainer.scan(), 0u);
  EXPECT_EQ(maintainer.stats().unrepairable, 1u);
}

}  // namespace
}  // namespace asa_repro::storage
