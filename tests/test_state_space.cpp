// State components, mixed-radix encoding and the paper's state naming.
#include <gtest/gtest.h>

#include "core/state_space.hpp"

namespace asa_repro::fsm {
namespace {

StateSpace commit_space(std::uint32_t r) {
  return StateSpace({
      boolean_component("update_received"),
      int_component("votes_received", r - 1),
      boolean_component("vote_sent"),
      int_component("commits_received", r - 1),
      boolean_component("commit_sent"),
      boolean_component("could_choose"),
      boolean_component("has_chosen"),
  });
}

TEST(StateSpace, SizeIsProductOfCardinalities) {
  // The paper: 2^5 * r^2 possible states.
  EXPECT_EQ(commit_space(4).size(), 512u);
  EXPECT_EQ(commit_space(7).size(), 1568u);
  EXPECT_EQ(commit_space(13).size(), 5408u);
  EXPECT_EQ(commit_space(25).size(), 20000u);
  EXPECT_EQ(commit_space(46).size(), 67712u);
}

TEST(StateSpace, EncodeDecodeRoundTripExhaustive) {
  const StateSpace space = commit_space(4);
  for (StateIndex i = 0; i < space.size(); ++i) {
    const StateVector v = space.decode(i);
    EXPECT_EQ(space.encode(v), i);
    EXPECT_TRUE(space.in_range(v));
  }
}

TEST(StateSpace, EncodeIsInjective) {
  const StateSpace space = commit_space(4);
  std::vector<bool> seen(space.size(), false);
  for (StateIndex i = 0; i < space.size(); ++i) {
    const StateIndex e = space.encode(space.decode(i));
    EXPECT_FALSE(seen[e]);
    seen[e] = true;
  }
}

TEST(StateSpace, NamingMatchesPaperEncoding) {
  const StateSpace space = commit_space(4);
  // Fig 14's example state T/2/F/0/F/F/F.
  const StateVector v = {1, 2, 0, 0, 0, 0, 0};
  EXPECT_EQ(space.name(v), "T/2/F/0/F/F/F");
  // Fig 16 uses dashes.
  EXPECT_EQ(space.name(v, '-'), "T-2-F-0-F-F-F");
}

TEST(StateSpace, ParseNameInvertsName) {
  const StateSpace space = commit_space(7);
  for (StateIndex i = 0; i < space.size(); i += 11) {
    const StateVector v = space.decode(i);
    const auto parsed = space.parse_name(space.name(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

TEST(StateSpace, ParseNameRejectsMalformed) {
  const StateSpace space = commit_space(4);
  EXPECT_FALSE(space.parse_name("").has_value());
  EXPECT_FALSE(space.parse_name("T/2/F/0/F/F").has_value());     // Short.
  EXPECT_FALSE(space.parse_name("T/2/F/0/F/F/F/T").has_value()); // Long.
  EXPECT_FALSE(space.parse_name("X/2/F/0/F/F/F").has_value());   // Bad bool.
  EXPECT_FALSE(space.parse_name("T/9/F/0/F/F/F").has_value());   // Range.
  EXPECT_FALSE(space.parse_name("T/-1/F/0/F/F/F").has_value());
  EXPECT_FALSE(space.parse_name("T/a/F/0/F/F/F").has_value());
}

TEST(StateSpace, IndexOfFindsComponents) {
  const StateSpace space = commit_space(4);
  EXPECT_EQ(space.index_of("update_received"), 0u);
  EXPECT_EQ(space.index_of("votes_received"), 1u);
  EXPECT_EQ(space.index_of("has_chosen"), 6u);
  EXPECT_FALSE(space.index_of("nonexistent").has_value());
}

TEST(StateSpace, InRangeRejectsBadVectors) {
  const StateSpace space = commit_space(4);
  EXPECT_FALSE(space.in_range({1, 2, 0}));                 // Wrong arity.
  EXPECT_FALSE(space.in_range({2, 0, 0, 0, 0, 0, 0}));     // Bool out of range.
  EXPECT_FALSE(space.in_range({1, 4, 0, 0, 0, 0, 0}));     // Int out of range.
  EXPECT_TRUE(space.in_range({1, 3, 1, 3, 1, 1, 1}));
}

TEST(StateSpace, BooleanFactoryProperties) {
  const StateComponent b = boolean_component("flag");
  EXPECT_TRUE(b.is_boolean);
  EXPECT_EQ(b.max_value, 1u);
  EXPECT_EQ(b.cardinality(), 2u);
  const StateComponent i = int_component("count", 6);
  EXPECT_FALSE(i.is_boolean);
  EXPECT_EQ(i.cardinality(), 7u);
}

TEST(StateSpace, SingleComponentSpace) {
  const StateSpace space({int_component("n", 9)});
  EXPECT_EQ(space.size(), 10u);
  EXPECT_EQ(space.name({7}), "7");
  EXPECT_EQ(space.decode(7), (StateVector{7}));
}

TEST(StateSpace, LastComponentVariesFastest) {
  const StateSpace space(
      {int_component("a", 2), int_component("b", 4)});
  EXPECT_EQ(space.encode({0, 0}), 0u);
  EXPECT_EQ(space.encode({0, 1}), 1u);
  EXPECT_EQ(space.encode({1, 0}), 5u);
  EXPECT_EQ(space.encode({2, 4}), 14u);
}

}  // namespace
}  // namespace asa_repro::fsm
