// The Chord overlay: lookup correctness against brute force, logarithmic
// routing, and resilience to joins, graceful leaves and crash failures.
#include <gtest/gtest.h>

#include "p2p/chord.hpp"
#include "sim/rng.hpp"

namespace asa_repro::p2p {
namespace {

NodeId key_of(int i) { return NodeId::hash_of("key:" + std::to_string(i)); }

TEST(Chord, SingleNodeOwnsEverything) {
  ChordRing ring;
  const NodeId id = ring.add_node(NodeId::hash_of("solo"));
  ring.run_maintenance(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.lookup(key_of(i)), id);
  }
}

TEST(Chord, TwoNodesSplitTheRing) {
  ChordRing ring;
  ring.add_node(NodeId::hash_of("a"));
  ring.add_node(NodeId::hash_of("b"));
  ring.run_maintenance(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.lookup(key_of(i)), ring.true_successor(key_of(i)))
        << "key " << i;
  }
}

class ChordLookup : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordLookup, RoutedLookupMatchesBruteForce) {
  ChordRing ring;
  ring.build(GetParam());
  for (int i = 0; i < 200; ++i) {
    const NodeId key = key_of(i);
    EXPECT_EQ(ring.lookup(key), ring.true_successor(key)) << "key " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ChordLookup,
                         ::testing::Values(2u, 3u, 8u, 32u, 64u, 128u));

TEST(Chord, LookupFromEveryNodeAgrees) {
  ChordRing ring;
  ring.build(24);
  for (int i = 0; i < 20; ++i) {
    const NodeId key = key_of(i);
    const NodeId expected = ring.true_successor(key);
    for (const NodeId& id : ring.node_ids()) {
      EXPECT_EQ(ring.node(id)->find_successor(key), expected);
    }
  }
}

TEST(Chord, HopsScaleLogarithmically) {
  // "routing performance that scales logarithmically with the size of the
  // network" — mean hops for 256 nodes must stay well under log2(n)+c and,
  // crucially, far under the linear walk n/2.
  ChordRing ring;
  ring.build(256);
  double total_hops = 0;
  const int lookups = 300;
  for (int i = 0; i < lookups; ++i) {
    std::size_t hops = 0;
    (void)ring.lookup(key_of(i), &hops);
    total_hops += static_cast<double>(hops);
  }
  const double mean = total_hops / lookups;
  EXPECT_LT(mean, 12.0);   // ~log2(256) = 8, generous slack.
  EXPECT_GT(mean, 1.0);    // Sanity: routing actually routes.
}

TEST(Chord, JoinsIntegrateNewNodes) {
  ChordRing ring;
  ring.build(16);
  const NodeId fresh = NodeId::hash_of("late-joiner");
  ring.add_node(fresh);
  ring.run_maintenance(30);
  // The new node owns the keys between its predecessor and itself.
  EXPECT_EQ(ring.lookup(fresh), fresh);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup(key_of(i)), ring.true_successor(key_of(i)));
  }
}

TEST(Chord, GracefulLeaveHandsOverKeyspace) {
  ChordRing ring;
  ring.build(16);
  const std::vector<NodeId> ids = ring.node_ids();
  ring.leave(ids[5]);
  ring.run_maintenance(20);
  EXPECT_EQ(ring.size(), 15u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup(key_of(i)), ring.true_successor(key_of(i)));
  }
}

TEST(Chord, CrashFailuresHealThroughSuccessorLists) {
  ChordRing ring;
  ring.build(32);
  sim::Rng rng(17);
  // Fail a quarter of the ring without warning.
  std::vector<NodeId> ids = ring.node_ids();
  for (int k = 0; k < 8; ++k) {
    const NodeId victim = ids[rng.below(ids.size())];
    if (ring.alive(victim) && ring.size() > 1) ring.fail(victim);
  }
  ring.run_maintenance(40);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.lookup(key_of(i)), ring.true_successor(key_of(i)))
        << "key " << i;
  }
}

TEST(Chord, ChurnJoinsAndFailuresInterleaved) {
  ChordRing ring;
  ring.build(20);
  sim::Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    ring.add_node(NodeId::hash_of("churn:" + std::to_string(round)));
    ring.run_maintenance(4);
    const std::vector<NodeId> ids = ring.node_ids();
    if (ids.size() > 4) {
      ring.fail(ids[rng.below(ids.size())]);
    }
    ring.run_maintenance(4);
  }
  ring.run_maintenance(30);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(ring.lookup(key_of(i)), ring.true_successor(key_of(i)))
        << "key " << i;
  }
}

TEST(Chord, SuccessorListsPopulated) {
  ChordRing ring;
  ring.build(16);
  for (const NodeId& id : ring.node_ids()) {
    const auto& list = ring.node(id)->successor_list();
    EXPECT_GE(list.size(), 2u) << id.short_hex();
    // The first entry is the true successor.
    EXPECT_EQ(list.front(), ring.true_successor(
                                id.plus(NodeId::from_uint64(1))));
  }
}

TEST(Chord, PredecessorsConverge) {
  ChordRing ring;
  ring.build(16);
  for (const NodeId& id : ring.node_ids()) {
    const auto pred = ring.node(id)->predecessor();
    ASSERT_TRUE(pred.has_value()) << id.short_hex();
    // id is the successor of (pred + 1).
    EXPECT_EQ(ring.true_successor(pred->plus(NodeId::from_uint64(1))), id);
  }
}

TEST(Chord, FingersPointAtTrueSuccessors) {
  ChordRing ring;
  ring.build(32);
  const NodeId id = ring.node_ids()[0];
  const ChordNode* node = ring.node(id);
  std::size_t populated = 0;
  for (unsigned i = 0; i < ChordNode::kBits; ++i) {
    const auto& f = node->fingers()[i];
    if (!f.has_value()) continue;
    ++populated;
    EXPECT_EQ(*f,
              ring.true_successor(id.plus(NodeId::power_of_two(i))))
        << "finger " << i;
  }
  EXPECT_GT(populated, 100u);  // Maintenance populated the table.
}

}  // namespace
}  // namespace asa_repro::p2p
