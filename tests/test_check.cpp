// Static-analysis library (src/check): structural lints, protocol
// properties, EFSM guard analysis, family conformance, the findings JSON
// schema, the mutation self-test, and the machine-cache validation hook.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "check/check.hpp"
#include "check/efsm_check.hpp"
#include "check/family.hpp"
#include "check/findings.hpp"
#include "check/mutate.hpp"
#include "check/properties.hpp"
#include "check/structural.hpp"
#include "commit/commit_efsm.hpp"
#include "commit/commit_model.hpp"
#include "commit/machine_cache.hpp"
#include "core/render/dot_renderer.hpp"
#include "core/render/mermaid_renderer.hpp"
#include "core/render/xml_renderer.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace asa_repro {
namespace {

const std::vector<std::string> kMessages = {"update", "vote", "commit",
                                            "free", "not_free"};

bool has_check(const check::Findings& findings, std::string_view name) {
  for (const check::Finding& f : findings) {
    if (f.check == name) return true;
  }
  return false;
}

fsm::State make_state(std::string name, bool is_final = false) {
  fsm::State s;
  s.name = std::move(name);
  s.is_final = is_final;
  return s;
}

fsm::Transition make_transition(fsm::MessageId message, fsm::StateId target,
                                fsm::ActionList actions = {}) {
  fsm::Transition t;
  t.message = message;
  t.target = target;
  t.actions = std::move(actions);
  return t;
}

// ---- Structural lints ----

TEST(LintStructure, EmptyMachineIsMalformed) {
  const fsm::StateMachine machine;
  const check::Findings findings = check::lint_structure(machine, "empty");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "structural.malformed");
}

TEST(LintStructure, SingleLoopingStateIsClean) {
  fsm::State s = make_state("only");
  s.transitions.push_back(make_transition(0, 0));
  const fsm::StateMachine machine(kMessages, {s}, 0, fsm::kNoState);
  EXPECT_TRUE(check::lint_structure(machine, "single").empty());
}

TEST(LintStructure, OnlyTerminalStateIsClean) {
  const fsm::StateMachine machine(kMessages, {make_state("done", true)}, 0, 0);
  EXPECT_TRUE(check::lint_structure(machine, "terminal").empty());
}

TEST(LintStructure, FlagsOutOfRangeTarget) {
  fsm::State s = make_state("start");
  s.transitions.push_back(make_transition(0, 7));
  const fsm::StateMachine machine(kMessages, {s}, 0, fsm::kNoState);
  EXPECT_TRUE(
      has_check(check::lint_structure(machine, "m"), "structural.malformed"));
}

TEST(LintStructure, FlagsUnreachableDuplicateNameAndSink) {
  fsm::State start = make_state("start");
  start.transitions.push_back(make_transition(0, 0));
  // Unreachable, shares the start state's name, and is a non-final sink.
  const fsm::StateMachine machine(kMessages, {start, make_state("start")}, 0,
                                  fsm::kNoState);
  const check::Findings findings = check::lint_structure(machine, "m");
  EXPECT_TRUE(has_check(findings, "structural.unreachable"));
  EXPECT_TRUE(has_check(findings, "structural.duplicate_name"));
  EXPECT_TRUE(has_check(findings, "structural.sink"));
}

TEST(LintStructure, DistinguishesDuplicateFromNondeterminism) {
  fsm::State a = make_state("a");
  a.transitions.push_back(make_transition(0, 1));
  a.transitions.push_back(make_transition(0, 1));  // Identical: duplicate.
  a.transitions.push_back(make_transition(1, 1));
  a.transitions.push_back(make_transition(1, 0));  // Divergent: ambiguous.
  const fsm::StateMachine machine(kMessages, {a, make_state("b", true)}, 0, 1);
  const check::Findings findings = check::lint_structure(machine, "m");
  EXPECT_TRUE(has_check(findings, "structural.duplicate"));
  EXPECT_TRUE(has_check(findings, "structural.nondeterminism"));
}

TEST(LintStructure, FlagsFinalStateWithExits) {
  fsm::State done = make_state("done", true);
  done.transitions.push_back(make_transition(0, 0));
  const fsm::StateMachine machine(kMessages, {done}, 0, 0);
  EXPECT_TRUE(has_check(check::lint_structure(machine, "m"),
                        "structural.terminal_exit"));
}

TEST(LintRenderedArtifacts, CleanOnGeneratedMachine) {
  const fsm::StateMachine machine =
      commit::CommitModel(4).generate_state_machine();
  EXPECT_TRUE(check::lint_rendered_artifacts(machine, "commit_r4").empty());
}

TEST(MachinesIdentical, ReportsFirstDifference) {
  const fsm::StateMachine machine =
      commit::CommitModel(4).generate_state_machine();
  fsm::StateMachine other = machine;
  other.states()[3].is_final = !other.states()[3].is_final;
  EXPECT_FALSE(check::machines_identical(machine, machine).has_value());
  const auto diff = check::machines_identical(machine, other);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("finality"), std::string::npos);
}

// ---- Protocol properties ----

TEST(ProtocolProperties, CleanOnGeneratedFamily) {
  for (std::uint32_t r = 4; r <= 8; ++r) {
    const fsm::StateMachine machine =
        commit::CommitModel(r).generate_state_machine();
    EXPECT_TRUE(check::check_protocol_properties(machine, r, "m").empty())
        << "r=" << r;
  }
}

TEST(ProtocolProperties, FlagsDoubleVote) {
  fsm::State a = make_state("a");
  a.transitions.push_back(make_transition(0, 1, {"vote"}));
  fsm::State b = make_state("b");
  b.transitions.push_back(make_transition(3, 2, {"vote"}));
  fsm::State c = make_state("c", true);
  const fsm::StateMachine machine(kMessages, {a, b, c}, 0, 2);
  const check::Findings findings =
      check::check_protocol_properties(machine, 4, "m");
  EXPECT_TRUE(has_check(findings, "property.vote_once"));
}

TEST(ProtocolProperties, FlagsUnjustifiedCommit) {
  fsm::State a = make_state("a");
  a.transitions.push_back(make_transition(0, 1, {"commit"}));
  fsm::State b = make_state("b");
  const fsm::StateMachine machine(kMessages, {a, b}, 0, fsm::kNoState);
  const check::Findings findings =
      check::check_protocol_properties(machine, 4, "m");
  EXPECT_TRUE(has_check(findings, "property.commit_justified"));
}

TEST(ProtocolProperties, FlagsPrematureAndMissedFinish) {
  // b is final after zero commits; d has consumed f+1 = 2 commits but is
  // not final.
  fsm::State a = make_state("a");
  a.transitions.push_back(make_transition(0, 1));
  a.transitions.push_back(make_transition(2, 2));
  fsm::State b = make_state("b", true);
  fsm::State c = make_state("c");
  c.transitions.push_back(make_transition(2, 3));
  fsm::State d = make_state("d");
  d.transitions.push_back(make_transition(3, 3));
  const fsm::StateMachine machine(kMessages, {a, b, c, d}, 0, 1);
  const check::Findings findings =
      check::check_protocol_properties(machine, 4, "m");
  EXPECT_TRUE(has_check(findings, "property.premature_finish"));
  EXPECT_TRUE(has_check(findings, "property.missed_finish"));
}

TEST(ProtocolProperties, FlagsNontermination) {
  fsm::State a = make_state("a");
  a.transitions.push_back(make_transition(0, 0));
  const fsm::StateMachine machine(kMessages, {a}, 0, fsm::kNoState);
  const check::Findings findings =
      check::check_protocol_properties(machine, 4, "m");
  EXPECT_TRUE(has_check(findings, "property.termination"));
}

TEST(ProtocolProperties, CounterexampleTraceIsReported) {
  fsm::State a = make_state("a");
  a.transitions.push_back(make_transition(0, 1, {"vote"}));
  fsm::State b = make_state("b");
  b.transitions.push_back(make_transition(1, 2, {"vote"}));
  fsm::State c = make_state("c", true);
  const fsm::StateMachine machine(kMessages, {a, b, c}, 0, 2);
  const check::Findings findings =
      check::check_protocol_properties(machine, 4, "m");
  ASSERT_TRUE(has_check(findings, "property.vote_once"));
  for (const check::Finding& f : findings) {
    if (f.check != "property.vote_once") continue;
    EXPECT_EQ(f.trace, (std::vector<std::string>{"update", "vote"}));
  }
}

// ---- EFSM guard analysis ----

/// A minimal well-formed EFSM: one variable v in [0, 2], message "inc"
/// counts it up. Tests mutate this scaffold.
fsm::Efsm tiny_efsm() {
  fsm::Efsm e;
  e.name = "tiny";
  e.messages = {"inc", "probe"};
  e.variables = {{"v", fsm::lit(0), fsm::lit(2)}};
  e.states.resize(2);
  e.states[0].name = "RUN";
  e.states[1].name = "DONE";
  e.states[1].is_final = true;
  fsm::EfsmRule inc;
  inc.message = 0;
  fsm::EfsmBranch count;
  count.guard = fsm::var("v") < fsm::lit(2);
  count.updates = {{"v", fsm::var("v") + fsm::lit(1)}};
  count.target = 0;
  fsm::EfsmBranch finish;
  finish.guard = fsm::var("v") >= fsm::lit(2);
  finish.target = 1;
  inc.branches = {count, finish};
  e.states[0].rules.push_back(inc);
  return e;
}

TEST(EfsmCheck, CleanOnPristineCommitEfsm) {
  const fsm::Efsm efsm = commit::make_commit_efsm();
  for (std::int64_t r = 4; r <= 16; ++r) {
    EXPECT_TRUE(
        check::check_efsm(efsm, commit::commit_efsm_params(r), "efsm").empty())
        << "r=" << r;
  }
}

TEST(EfsmCheck, CleanOnTinyEfsm) {
  EXPECT_TRUE(check::check_efsm(tiny_efsm(), {}, "tiny").empty());
}

TEST(EfsmCheck, FlagsUnsatisfiableGuard) {
  fsm::Efsm e = tiny_efsm();
  // v never exceeds 2, so this guard holds at no domain point.
  e.states[0].rules[0].branches[0].guard = fsm::var("v") > fsm::lit(5);
  const check::Findings findings = check::check_efsm(e, {}, "tiny");
  EXPECT_TRUE(has_check(findings, "efsm.guard.unsat"));
}

TEST(EfsmCheck, FlagsShadowedBranch) {
  fsm::Efsm e = tiny_efsm();
  e.states[0].rules[0].branches[0].guard = fsm::lit(1);
  const check::Findings findings = check::check_efsm(e, {}, "tiny");
  EXPECT_TRUE(has_check(findings, "efsm.guard.shadowed"));
}

TEST(EfsmCheck, FlagsDuplicateBranch) {
  fsm::Efsm e = tiny_efsm();
  e.states[0].rules[0].branches.push_back(e.states[0].rules[0].branches[0]);
  const check::Findings findings = check::check_efsm(e, {}, "tiny");
  EXPECT_TRUE(has_check(findings, "efsm.guard.duplicate"));
}

TEST(EfsmCheck, FlagsInteriorGapButNotBoundaryGap) {
  fsm::Efsm e = tiny_efsm();
  // probe fires only at v == 0: v == 1 is an interior gap (v's maximum is
  // 2, so v == 2 would be a deliberate boundary gap).
  fsm::EfsmRule probe;
  probe.message = 1;
  fsm::EfsmBranch at_zero;
  at_zero.guard = fsm::var("v") == fsm::lit(0);
  at_zero.target = 0;
  probe.branches = {at_zero};
  e.states[0].rules.push_back(probe);
  const check::Findings findings = check::check_efsm(e, {}, "tiny");
  ASSERT_TRUE(has_check(findings, "efsm.guard.gap"));
  for (const check::Finding& f : findings) {
    if (f.check != "efsm.guard.gap") continue;
    EXPECT_NE(f.message.find("v=1"), std::string::npos) << f.message;
  }
}

TEST(EfsmCheck, BoundaryOnlyGapIsNotReported) {
  fsm::Efsm e = tiny_efsm();
  // probe covers v < 2 exactly: the only gap is at the boundary v == 2.
  fsm::EfsmRule probe;
  probe.message = 1;
  fsm::EfsmBranch below;
  below.guard = fsm::var("v") < fsm::lit(2);
  below.target = 0;
  probe.branches = {below};
  e.states[0].rules.push_back(probe);
  EXPECT_TRUE(check::check_efsm(e, {}, "tiny").empty());
}

TEST(EfsmCheck, FlagsUpdateEscapingBounds) {
  fsm::Efsm e = tiny_efsm();
  e.states[0].rules[0].branches[0].updates = {
      {"v", fsm::var("v") + fsm::lit(5)}};
  const check::Findings findings = check::check_efsm(e, {}, "tiny");
  EXPECT_TRUE(has_check(findings, "efsm.update.bounds"));
}

TEST(EfsmCheck, FlagsUnreachableState) {
  fsm::Efsm e = tiny_efsm();
  // Retarget the finishing branch so DONE is never entered.
  e.states[0].rules[0].branches[1].target = 0;
  const check::Findings findings = check::check_efsm(e, {}, "tiny");
  EXPECT_TRUE(has_check(findings, "efsm.state.unreachable"));
}

// ---- Family conformance and the checked-in artefact ----

TEST(FamilyConformance, EfsmMatchesGeneratedFamily) {
  const fsm::Efsm efsm = commit::make_commit_efsm();
  EXPECT_TRUE(check::check_family_conformance(efsm, 4, 8).empty());
}

TEST(FamilyConformance, ReportsDivergingMemberWithTrace) {
  fsm::Efsm efsm = commit::make_commit_efsm();
  const auto state = efsm.state_id("IDLE_FREE").value();
  const auto message = efsm.message_id("update").value();
  for (fsm::EfsmRule& rule : efsm.states[state].rules) {
    if (rule.message == message) {
      rule.branches.back().target = efsm.state_id("FINISHED").value();
    }
  }
  const check::Findings findings =
      check::check_family_conformance(efsm, 4, 6);
  ASSERT_TRUE(has_check(findings, "family.bisimulation"));
  for (const check::Finding& f : findings) {
    if (f.check == "family.bisimulation") {
      EXPECT_FALSE(f.trace.empty());
    }
  }
}

TEST(GeneratedArtifactCheck, CheckedInSourceIsByteIdentical) {
  const check::Findings findings = check::check_generated_artifact(
      std::string(ASA_SRC_DIR) + "/commit/generated/commit_fsm_r4.hpp");
  EXPECT_TRUE(findings.empty());
}

TEST(GeneratedArtifactCheck, FlagsStaleArtifact) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "stale_fsm_r4.hpp";
  std::ofstream(path) << "// stale contents\n";
  const check::Findings findings = check::check_generated_artifact(path);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "artifact.generated");
  std::filesystem::remove(path);
}

// ---- Full driver and the findings document ----

TEST(CheckDriver, PristineFamilyHasNoFindings) {
  check::CheckOptions options;
  options.r_lo = 4;
  options.r_hi = 8;
  options.artifact_path =
      std::string(ASA_SRC_DIR) + "/commit/generated/commit_fsm_r4.hpp";
  const check::CheckRun run = check::run_commit_checks(options);
  EXPECT_TRUE(run.findings.empty());
  EXPECT_GT(run.checks_run, 0u);
}

TEST(FindingsJson, RoundTripsThroughValidator) {
  check::Findings findings;
  findings.emplace_back("structural.sink", "m", "state 's'", "dead end",
                        std::vector<std::string>{"update", "vote"});
  const std::string json =
      check::write_findings_json(findings, {{"tool", "test"}}, 7);
  const std::optional<obs::JsonValue> parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(obs::validate_findings_json(*parsed).has_value());
  EXPECT_FALSE(obs::validate_document_json(*parsed).has_value());
  const std::string rendered = obs::render_findings(*parsed);
  EXPECT_NE(rendered.find("structural.sink"), std::string::npos);
  EXPECT_NE(rendered.find("trace: update vote"), std::string::npos);
}

TEST(FindingsJson, ValidatorRejectsBadDocuments) {
  // JsonValue::set appends (find returns the first member), so bad
  // documents are built fresh rather than by mutating a good one.
  obs::JsonValue wrong_schema = obs::JsonValue::object();
  wrong_schema.set("schema", obs::JsonValue("asa-findings/2"));
  EXPECT_TRUE(obs::validate_findings_json(wrong_schema).has_value());

  obs::JsonValue no_summary = obs::JsonValue::object();
  no_summary.set("schema", obs::JsonValue("asa-findings/1"));
  no_summary.set("meta", obs::JsonValue::object());
  no_summary.set("summary", obs::JsonValue("nope"));
  EXPECT_TRUE(obs::validate_findings_json(no_summary).has_value());

  obs::JsonValue bad_finding = *obs::parse_json(
      check::write_findings_json({{"c", "m", "l", "msg"}}, {}, 1));
  EXPECT_FALSE(obs::validate_findings_json(bad_finding).has_value());
}

TEST(FindingToString, IncludesTrace) {
  check::Finding f{"property.vote_once", "m", "state 's'", "double vote",
                   {"update", "vote"}};
  EXPECT_EQ(check::to_string(f),
            "property.vote_once [m] state 's': double vote "
            "(trace: update, vote)");
}

// ---- Mutation self-test ----

TEST(MutationSelfTest, DetectsEveryMutation) {
  const check::MutationReport report = check::run_mutation_self_test(4);
  EXPECT_GE(report.outcomes.size(), 10u);
  for (const check::MutationOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.detected) << o.name << " was not detected";
  }
  EXPECT_TRUE(report.all_detected());
}

// ---- Machine-cache validation hook (regression for the corrupted-but-
// parseable cache entry) ----

TEST(MachineCacheValidation, RejectsParseableButBrokenCacheEntry) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "asa-check-cache-test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Craft a cached artefact that parses fine but fails the structural
  // lints: the pristine machine plus an orphaned non-final sink state.
  fsm::StateMachine corrupted =
      commit::CommitModel(4).generate_state_machine();
  corrupted.states().push_back(make_state("ORPHAN"));
  std::ofstream(dir / fsm::MachineCache::file_name("commit", 4))
      << fsm::XmlRenderer().render(corrupted);

  commit::MachineCache cache(dir);
  const fsm::StateMachine& machine = cache.machine_for(4);
  EXPECT_EQ(cache.stats().validation_rejects, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  EXPECT_FALSE(machine.state_id("ORPHAN").has_value());
  EXPECT_FALSE(check::machines_identical(
                   machine, commit::CommitModel(4).generate_state_machine())
                   .has_value());

  // The rejected entry was overwritten with a healthy regeneration: a
  // fresh cache instance now gets a clean disk hit.
  commit::MachineCache healed(dir);
  (void)healed.machine_for(4);
  EXPECT_EQ(healed.stats().disk_hits, 1u);
  EXPECT_EQ(healed.stats().validation_rejects, 0u);
  std::filesystem::remove_all(dir);
}

TEST(MachineCacheValidation, MemoryOnlyCacheNeverValidates) {
  commit::MachineCache cache;
  (void)cache.machine_for(4);
  (void)cache.machine_for(4);
  EXPECT_EQ(cache.stats().validation_rejects, 0u);
}

// ---- Highlight rendering (fsmcheck --dot / --mermaid) ----

TEST(HighlightRendering, DotEmphasisesFlaggedStatesAndEdges) {
  const fsm::StateMachine machine =
      commit::CommitModel(4).generate_state_machine();
  fsm::DotOptions options;
  options.highlight_states = {machine.start()};
  options.highlight_transitions = {
      {machine.start(), machine.state(machine.start()).transitions[0].message}};
  const std::string dot = fsm::DotRenderer(options).render(machine);
  EXPECT_NE(dot.find("crimson"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);

  const std::string plain = fsm::DotRenderer().render(machine);
  EXPECT_EQ(plain.find("crimson"), std::string::npos);
}

TEST(HighlightRendering, MermaidEmitsClassAndLinkStyle) {
  const fsm::StateMachine machine =
      commit::CommitModel(4).generate_state_machine();
  fsm::MermaidOptions options;
  options.highlight_states = {machine.start()};
  options.highlight_transitions = {
      {machine.start(), machine.state(machine.start()).transitions[0].message}};
  const std::string mermaid = fsm::MermaidRenderer(options).render(machine);
  EXPECT_NE(mermaid.find("classDef flagged"), std::string::npos);
  EXPECT_NE(mermaid.find("linkStyle"), std::string::npos);

  const std::string plain = fsm::MermaidRenderer().render(machine);
  EXPECT_EQ(plain.find("flagged"), std::string::npos);
}

}  // namespace
}  // namespace asa_repro
