// Observability layer: metrics registry semantics, JSON schema round-trip,
// causal trace <-> NetworkStats reconciliation, JSONL escaping, and the
// end-to-end determinism contract (identical seed => byte-identical
// metrics export).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "storage/cluster.hpp"

namespace asa_repro {
namespace {

// ---- MetricsRegistry semantics. ----

TEST(MetricsRegistry, CountersGaugesHistogramsBasics) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(4);
  EXPECT_EQ(reg.counter("c").value(), 5u);

  reg.gauge("g").set(-3);
  reg.gauge("g").add(10);
  EXPECT_EQ(reg.gauge("g").value(), 7);

  auto& h = reg.histogram("h", {}, {10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 555u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 500u);
  const std::vector<std::uint64_t> expected{1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_EQ(h.quantile(0.33), 10u);   // cdf(10) = 1/3 covers q = 0.33.
  EXPECT_EQ(h.quantile(0.66), 100u);  // cdf(100) = 2/3.
  EXPECT_EQ(h.quantile(1.0), 500u);   // Overflow bucket reports max().
}

TEST(MetricsRegistry, LabelOrderIsNormalised) {
  obs::MetricsRegistry reg;
  reg.counter("c", {{"a", "1"}, {"b", "2"}}).inc();
  reg.counter("c", {{"b", "2"}, {"a", "1"}}).inc();
  EXPECT_EQ(reg.counter("c", {{"a", "1"}, {"b", "2"}}).value(), 2u);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(MetricsRegistry, DisabledRegistryExportsNothing) {
  obs::MetricsRegistry reg(false);
  reg.counter("c").inc(99);
  reg.gauge("g").set(7);
  reg.histogram("h").observe(1234);
  EXPECT_EQ(reg.series_count(), 0u);

  std::size_t visited = 0;
  reg.for_each_counter([&](const auto&, const auto&) { ++visited; });
  reg.for_each_gauge([&](const auto&, const auto&) { ++visited; });
  reg.for_each_histogram([&](const auto&, const auto&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(MetricsRegistry, MergeAddsCountersAndHistogramsAdoptsGauges) {
  obs::MetricsRegistry a;
  a.counter("c").inc(3);
  a.gauge("g").set(1);
  a.histogram("h", {}, {10}).observe(5);

  obs::MetricsRegistry b;
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  b.gauge("g").set(9);
  b.histogram("h", {}, {10}).observe(50);
  // Mismatched bounds for the same series name must be skipped, not mixed.
  b.histogram("h2", {}, {1, 2}).observe(1);
  a.histogram("h2", {}, {1000}).observe(1);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_EQ(a.gauge("g").value(), 9);
  EXPECT_EQ(a.histogram("h", {}, {10}).count(), 2u);
  EXPECT_EQ(a.histogram("h", {}, {10}).sum(), 55u);
  EXPECT_EQ(a.histogram("h2", {}, {1000}).count(), 1u);
}

// ---- asa-metrics/1 JSON: write, parse back, validate. ----

TEST(MetricsJson, ExportParsesAndValidates) {
  obs::MetricsRegistry reg;
  reg.counter("events", {{"node", "3"}}).inc(12);
  reg.gauge("depth").set(-5);
  reg.histogram("lat", {}, obs::latency_buckets_us()).observe(1234);

  const std::string doc = obs::write_metrics_json(
      reg, {{"tool", "test"}, {"seed", "42"}});
  const auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_metrics_json(*parsed), std::nullopt);

  const auto* schema = parsed->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "asa-metrics/1");
  const auto* meta = parsed->find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->find("seed"), nullptr);
  EXPECT_EQ(meta->find("seed")->as_string(), "42");

  const auto* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->items().size(), 1u);
  EXPECT_EQ(counters->items()[0].find("value")->as_int(), 12);
  const auto* labels = counters->items()[0].find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->find("node")->as_string(), "3");

  // Histogram buckets end with the "inf" overflow bucket.
  const auto* hists = parsed->find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->items().size(), 1u);
  const auto& buckets = hists->items()[0].find("buckets")->items();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.back().find("le")->as_string(), "inf");
}

TEST(MetricsJson, ValidatorRejectsWrongSchemaAndShape) {
  const auto bad_schema =
      obs::parse_json(R"({"schema":"nonsense/9","meta":{},"counters":[],)"
                      R"("gauges":[],"histograms":[]})");
  ASSERT_TRUE(bad_schema.has_value());
  EXPECT_NE(obs::validate_metrics_json(*bad_schema), std::nullopt);

  const auto missing_section =
      obs::parse_json(R"({"schema":"asa-metrics/1","meta":{}})");
  ASSERT_TRUE(missing_section.has_value());
  EXPECT_NE(obs::validate_metrics_json(*missing_section), std::nullopt);
}

// ---- Trace JSONL round-trip, including hostile details. ----

TEST(TraceJsonl, RoundTripPreservesNewlinesQuotesAndControlChars) {
  sim::Trace trace;
  trace.record(10, 1, "cat.a", "plain detail");
  trace.record(20, 2, "cat.b", "line one\nline two\ttabbed");
  trace.record(30, 3, "cat.a", R"(quotes " and \ backslash)");
  trace.record(40, 4, "cat\"c", std::string("nul \x01 ctrl"));

  std::ostringstream os;
  os << R"({"schema":"asa-trace/1","tool":"test"})" << "\n";
  trace.dump_jsonl(os);
  os << "\n";  // Trailing blank line must be tolerated.

  const auto events = sim::Trace::parse_jsonl(os.str());
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), trace.events().size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].time, trace.events()[i].time);
    EXPECT_EQ((*events)[i].node, trace.events()[i].node);
    EXPECT_EQ((*events)[i].category, trace.events()[i].category);
    EXPECT_EQ((*events)[i].detail, trace.events()[i].detail);
  }

  // The decoupled report-side parser agrees.
  const auto report_events = obs::parse_trace_jsonl(os.str());
  ASSERT_TRUE(report_events.has_value());
  ASSERT_EQ(report_events->size(), trace.events().size());
  EXPECT_EQ((*report_events)[1].detail, "line one\nline two\ttabbed");
}

TEST(TraceJsonl, MalformedLineFailsTheParse) {
  EXPECT_FALSE(sim::Trace::parse_jsonl("not json\n").has_value());
  EXPECT_FALSE(
      sim::Trace::parse_jsonl(R"({"t":1,"node":0,"cat":"x"})" "\n{oops\n")
          .has_value());
}

TEST(TraceJsonl, DetailFieldExtraction) {
  EXPECT_EQ(obs::detail_field("guid=7 update=12 latency=3200", "latency"),
            std::optional<std::uint64_t>(3200));
  EXPECT_EQ(obs::detail_field("guid=7", "update"), std::nullopt);
  EXPECT_EQ(obs::detail_field("update=x", "update"), std::nullopt);
}

// ---- Causal trace <-> NetworkStats reconciliation under forced faults. ----

// Collect the id= field of every event in a category.
std::vector<std::uint64_t> ids_in(const sim::Trace& trace,
                                  const std::string& category) {
  std::vector<std::uint64_t> ids;
  trace.for_each_in_category(category, [&](const sim::TraceEvent& e) {
    const auto id = obs::detail_field(e.detail, "id");
    EXPECT_TRUE(id.has_value()) << category << ": " << e.detail;
    if (id.has_value()) ids.push_back(*id);
  });
  return ids;
}

TEST(NetworkCausalTrace, StatsReconcileUnderDropDuplicateAndPartition) {
  sim::Scheduler sched;
  sim::Network net(sched, sim::Rng(7));
  sim::Trace trace;
  net.set_trace(&trace);
  net.attach(0, [](sim::NodeAddr, const std::string&) {});
  net.attach(1, [](sim::NodeAddr, const std::string&) {});

  // Phase 1: forced drops — every send is lost, with a net.drop event
  // carrying the message id.
  net.set_drop_probability(1.0);
  for (int i = 0; i < 5; ++i) net.send(0, 1, "drop me");
  // Phase 2: forced duplicates — every send delivers twice under one id.
  net.set_drop_probability(0.0);
  net.set_duplicate_probability(1.0);
  for (int i = 0; i < 4; ++i) net.send(0, 1, "dup me");
  // Phase 3: partitioned link and a message to a dead node.
  net.set_duplicate_probability(0.0);
  net.partition(0, 1);
  for (int i = 0; i < 3; ++i) net.send(0, 1, "lost to partition");
  net.heal(0, 1);
  net.send(0, 99, "nobody home");
  sched.run();

  const sim::NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.sent, 13u);
  EXPECT_EQ(stats.dropped, 5u);
  EXPECT_EQ(stats.duplicated, 4u);
  EXPECT_EQ(stats.partitioned, 3u);
  EXPECT_EQ(stats.to_dead_node, 1u);
  EXPECT_EQ(stats.delivered, 8u);  // 4 sends x 2 copies.

  // Every aggregate count reconciles with per-message trace events.
  EXPECT_EQ(trace.count("net.send"), stats.sent);
  EXPECT_EQ(trace.count("net.drop"), stats.dropped);
  EXPECT_EQ(trace.count("net.dup"), stats.duplicated);
  EXPECT_EQ(trace.count("net.part"), stats.partitioned);
  EXPECT_EQ(trace.count("net.dead"), stats.to_dead_node);
  EXPECT_EQ(trace.count("net.deliver"), stats.delivered);

  // Send ids are unique and monotonically increasing from 1.
  const auto send_ids = ids_in(trace, "net.send");
  ASSERT_EQ(send_ids.size(), 13u);
  for (std::size_t i = 0; i < send_ids.size(); ++i) {
    EXPECT_EQ(send_ids[i], i + 1);
  }
  EXPECT_EQ(net.next_message_id(), 14u);

  // Every outcome id refers back to a send, and the outcomes partition the
  // sends: each id is dropped, partitioned, or delivered (1 or 2 copies).
  const std::set<std::uint64_t> sent_set(send_ids.begin(), send_ids.end());
  std::set<std::uint64_t> terminal;
  for (const char* cat : {"net.drop", "net.part", "net.deliver", "net.dead"}) {
    for (const std::uint64_t id : ids_in(trace, cat)) {
      EXPECT_TRUE(sent_set.contains(id)) << cat << " id " << id;
      terminal.insert(id);
    }
  }
  EXPECT_EQ(terminal, sent_set);

  // Duplicated ids show up exactly twice in net.deliver.
  const auto deliver_ids = ids_in(trace, "net.deliver");
  for (const std::uint64_t id : ids_in(trace, "net.dup")) {
    EXPECT_EQ(std::count(deliver_ids.begin(), deliver_ids.end(), id), 2)
        << "dup id " << id;
  }

  // Delivery events carry the sampled latency.
  trace.for_each_in_category("net.deliver", [&](const sim::TraceEvent& e) {
    EXPECT_TRUE(obs::detail_field(e.detail, "latency").has_value())
        << e.detail;
  });
}

TEST(NetworkCausalTrace, IdsAssignedEvenWithTracingOff) {
  sim::Scheduler sched;
  sim::Network net(sched, sim::Rng(3));
  net.attach(1, [](sim::NodeAddr, const std::string&) {});
  EXPECT_EQ(net.send(0, 1, "a"), 1u);
  EXPECT_EQ(net.send(0, 1, "b"), 2u);
  EXPECT_EQ(net.next_message_id(), 3u);
}

// ---- End-to-end determinism: identical seed => byte-identical export. ----

std::string run_cluster_and_export(std::uint64_t seed) {
  storage::ClusterConfig config;
  config.nodes = 10;
  config.replication_factor = 4;
  config.seed = seed;
  config.metrics = true;
  config.tracing = true;
  config.drop_probability = 0.05;
  storage::AsaCluster cluster(config);

  int committed = 0;
  for (int u = 0; u < 5; ++u) {
    const storage::Guid guid = storage::Guid::named("guid:" +
                                                    std::to_string(u % 2));
    const storage::Pid pid =
        storage::Pid::of(storage::block_from("update " + std::to_string(u)));
    cluster.version_history().append(
        guid, pid,
        [&](const commit::CommitResult& r) { committed += r.committed; });
    cluster.run_for(2'000);
  }
  cluster.run();
  EXPECT_GT(committed, 0);

  cluster.snapshot_metrics();
  return obs::write_metrics_json(cluster.metrics(),
                                 {{"tool", "test"},
                                  {"seed", std::to_string(seed)}});
}

TEST(MetricsDeterminism, IdenticalSeedProducesByteIdenticalJson) {
  const std::string first = run_cluster_and_export(11);
  const std::string second = run_cluster_and_export(11);
  EXPECT_EQ(first, second);
  // And the export is substantive, not vacuously equal.
  const auto parsed = obs::parse_json(first);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_metrics_json(*parsed), std::nullopt);
  EXPECT_FALSE(parsed->find("histograms")->items().empty());
}

TEST(MetricsDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_cluster_and_export(11), run_cluster_and_export(12));
}

}  // namespace
}  // namespace asa_repro
