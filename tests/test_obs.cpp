// Observability layer: metrics registry semantics, JSON schema round-trip,
// causal trace <-> NetworkStats reconciliation, JSONL escaping, flight
// recorder rings, commit-path spans and critical-path attribution,
// post-mortem bundles, the bench trend gate, and the end-to-end
// determinism contract (identical seed => byte-identical exports).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "storage/chaos.hpp"
#include "storage/cluster.hpp"

// Global allocation counter backing the disabled-mode zero-allocation
// test (this test binary only; new[] forwards here by default).
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// GCC pairs delete-expressions with the std::free inlined from these
// operators and flags a new/free mismatch; the replacement operator new
// above allocates with std::malloc, so the pairing is in fact matched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace asa_repro {
namespace {

// ---- MetricsRegistry semantics. ----

TEST(MetricsRegistry, CountersGaugesHistogramsBasics) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(4);
  EXPECT_EQ(reg.counter("c").value(), 5u);

  reg.gauge("g").set(-3);
  reg.gauge("g").add(10);
  EXPECT_EQ(reg.gauge("g").value(), 7);

  auto& h = reg.histogram("h", {}, {10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 555u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 500u);
  const std::vector<std::uint64_t> expected{1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_EQ(h.quantile(0.33), 10u);   // cdf(10) = 1/3 covers q = 0.33.
  EXPECT_EQ(h.quantile(0.66), 100u);  // cdf(100) = 2/3.
  EXPECT_EQ(h.quantile(1.0), 500u);   // Overflow bucket reports max().
}

TEST(MetricsRegistry, LabelOrderIsNormalised) {
  obs::MetricsRegistry reg;
  reg.counter("c", {{"a", "1"}, {"b", "2"}}).inc();
  reg.counter("c", {{"b", "2"}, {"a", "1"}}).inc();
  EXPECT_EQ(reg.counter("c", {{"a", "1"}, {"b", "2"}}).value(), 2u);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(MetricsRegistry, DisabledRegistryExportsNothing) {
  obs::MetricsRegistry reg(false);
  reg.counter("c").inc(99);
  reg.gauge("g").set(7);
  reg.histogram("h").observe(1234);
  EXPECT_EQ(reg.series_count(), 0u);

  std::size_t visited = 0;
  reg.for_each_counter([&](const auto&, const auto&) { ++visited; });
  reg.for_each_gauge([&](const auto&, const auto&) { ++visited; });
  reg.for_each_histogram([&](const auto&, const auto&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(MetricsRegistry, MergeAddsCountersAndHistogramsAdoptsGauges) {
  obs::MetricsRegistry a;
  a.counter("c").inc(3);
  a.gauge("g").set(1);
  a.histogram("h", {}, {10}).observe(5);

  obs::MetricsRegistry b;
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  b.gauge("g").set(9);
  b.histogram("h", {}, {10}).observe(50);
  // Mismatched bounds for the same series name must be skipped, not mixed.
  b.histogram("h2", {}, {1, 2}).observe(1);
  a.histogram("h2", {}, {1000}).observe(1);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_EQ(a.gauge("g").value(), 9);
  EXPECT_EQ(a.histogram("h", {}, {10}).count(), 2u);
  EXPECT_EQ(a.histogram("h", {}, {10}).sum(), 55u);
  EXPECT_EQ(a.histogram("h2", {}, {1000}).count(), 1u);
}

// ---- asa-metrics/1 JSON: write, parse back, validate. ----

TEST(MetricsJson, ExportParsesAndValidates) {
  obs::MetricsRegistry reg;
  reg.counter("events", {{"node", "3"}}).inc(12);
  reg.gauge("depth").set(-5);
  reg.histogram("lat", {}, obs::latency_buckets_us()).observe(1234);

  const std::string doc = obs::write_metrics_json(
      reg, {{"tool", "test"}, {"seed", "42"}});
  const auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_metrics_json(*parsed), std::nullopt);

  const auto* schema = parsed->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "asa-metrics/1");
  const auto* meta = parsed->find("meta");
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(meta->find("seed"), nullptr);
  EXPECT_EQ(meta->find("seed")->as_string(), "42");

  const auto* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->items().size(), 1u);
  EXPECT_EQ(counters->items()[0].find("value")->as_int(), 12);
  const auto* labels = counters->items()[0].find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->find("node")->as_string(), "3");

  // Histogram buckets end with the "inf" overflow bucket.
  const auto* hists = parsed->find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->items().size(), 1u);
  const auto& buckets = hists->items()[0].find("buckets")->items();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.back().find("le")->as_string(), "inf");
}

TEST(MetricsJson, ValidatorRejectsWrongSchemaAndShape) {
  const auto bad_schema =
      obs::parse_json(R"({"schema":"nonsense/9","meta":{},"counters":[],)"
                      R"("gauges":[],"histograms":[]})");
  ASSERT_TRUE(bad_schema.has_value());
  EXPECT_NE(obs::validate_metrics_json(*bad_schema), std::nullopt);

  const auto missing_section =
      obs::parse_json(R"({"schema":"asa-metrics/1","meta":{}})");
  ASSERT_TRUE(missing_section.has_value());
  EXPECT_NE(obs::validate_metrics_json(*missing_section), std::nullopt);
}

// ---- Trace JSONL round-trip, including hostile details. ----

TEST(TraceJsonl, RoundTripPreservesNewlinesQuotesAndControlChars) {
  sim::Trace trace;
  trace.record(10, 1, "cat.a", "plain detail");
  trace.record(20, 2, "cat.b", "line one\nline two\ttabbed");
  trace.record(30, 3, "cat.a", R"(quotes " and \ backslash)");
  trace.record(40, 4, "cat\"c", std::string("nul \x01 ctrl"));

  std::ostringstream os;
  os << R"({"schema":"asa-trace/1","tool":"test"})" << "\n";
  trace.dump_jsonl(os);
  os << "\n";  // Trailing blank line must be tolerated.

  const auto events = sim::Trace::parse_jsonl(os.str());
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), trace.events().size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].time, trace.events()[i].time);
    EXPECT_EQ((*events)[i].node, trace.events()[i].node);
    EXPECT_EQ((*events)[i].category, trace.events()[i].category);
    EXPECT_EQ((*events)[i].detail, trace.events()[i].detail);
  }

  // The decoupled report-side parser agrees.
  const auto report_events = obs::parse_trace_jsonl(os.str());
  ASSERT_TRUE(report_events.has_value());
  ASSERT_EQ(report_events->size(), trace.events().size());
  EXPECT_EQ((*report_events)[1].detail, "line one\nline two\ttabbed");
}

TEST(TraceJsonl, MalformedLineFailsTheParse) {
  EXPECT_FALSE(sim::Trace::parse_jsonl("not json\n").has_value());
  EXPECT_FALSE(
      sim::Trace::parse_jsonl(R"({"t":1,"node":0,"cat":"x"})" "\n{oops\n")
          .has_value());
}

TEST(TraceJsonl, DetailFieldExtraction) {
  EXPECT_EQ(obs::detail_field("guid=7 update=12 latency=3200", "latency"),
            std::optional<std::uint64_t>(3200));
  EXPECT_EQ(obs::detail_field("guid=7", "update"), std::nullopt);
  EXPECT_EQ(obs::detail_field("update=x", "update"), std::nullopt);
}

// ---- Causal trace <-> NetworkStats reconciliation under forced faults. ----

// Collect the id= field of every event in a category.
std::vector<std::uint64_t> ids_in(const sim::Trace& trace,
                                  const std::string& category) {
  std::vector<std::uint64_t> ids;
  trace.for_each_in_category(category, [&](const sim::TraceEvent& e) {
    const auto id = obs::detail_field(e.detail, "id");
    EXPECT_TRUE(id.has_value()) << category << ": " << e.detail;
    if (id.has_value()) ids.push_back(*id);
  });
  return ids;
}

TEST(NetworkCausalTrace, StatsReconcileUnderDropDuplicateAndPartition) {
  sim::Scheduler sched;
  sim::Network net(sched, sim::Rng(7));
  sim::Trace trace;
  net.set_trace(&trace);
  net.attach(0, [](sim::NodeAddr, const std::string&) {});
  net.attach(1, [](sim::NodeAddr, const std::string&) {});

  // Phase 1: forced drops — every send is lost, with a net.drop event
  // carrying the message id.
  net.set_drop_probability(1.0);
  for (int i = 0; i < 5; ++i) net.send(0, 1, "drop me");
  // Phase 2: forced duplicates — every send delivers twice under one id.
  net.set_drop_probability(0.0);
  net.set_duplicate_probability(1.0);
  for (int i = 0; i < 4; ++i) net.send(0, 1, "dup me");
  // Phase 3: partitioned link and a message to a dead node.
  net.set_duplicate_probability(0.0);
  net.partition(0, 1);
  for (int i = 0; i < 3; ++i) net.send(0, 1, "lost to partition");
  net.heal(0, 1);
  net.send(0, 99, "nobody home");
  sched.run();

  const sim::NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.sent, 13u);
  EXPECT_EQ(stats.dropped, 5u);
  EXPECT_EQ(stats.duplicated, 4u);
  EXPECT_EQ(stats.partitioned, 3u);
  EXPECT_EQ(stats.to_dead_node, 1u);
  EXPECT_EQ(stats.delivered, 8u);  // 4 sends x 2 copies.

  // Every aggregate count reconciles with per-message trace events.
  EXPECT_EQ(trace.count("net.send"), stats.sent);
  EXPECT_EQ(trace.count("net.drop"), stats.dropped);
  EXPECT_EQ(trace.count("net.dup"), stats.duplicated);
  EXPECT_EQ(trace.count("net.part"), stats.partitioned);
  EXPECT_EQ(trace.count("net.dead"), stats.to_dead_node);
  EXPECT_EQ(trace.count("net.deliver"), stats.delivered);

  // Send ids are unique and monotonically increasing from 1.
  const auto send_ids = ids_in(trace, "net.send");
  ASSERT_EQ(send_ids.size(), 13u);
  for (std::size_t i = 0; i < send_ids.size(); ++i) {
    EXPECT_EQ(send_ids[i], i + 1);
  }
  EXPECT_EQ(net.next_message_id(), 14u);

  // Every outcome id refers back to a send, and the outcomes partition the
  // sends: each id is dropped, partitioned, or delivered (1 or 2 copies).
  const std::set<std::uint64_t> sent_set(send_ids.begin(), send_ids.end());
  std::set<std::uint64_t> terminal;
  for (const char* cat : {"net.drop", "net.part", "net.deliver", "net.dead"}) {
    for (const std::uint64_t id : ids_in(trace, cat)) {
      EXPECT_TRUE(sent_set.contains(id)) << cat << " id " << id;
      terminal.insert(id);
    }
  }
  EXPECT_EQ(terminal, sent_set);

  // Duplicated ids show up exactly twice in net.deliver.
  const auto deliver_ids = ids_in(trace, "net.deliver");
  for (const std::uint64_t id : ids_in(trace, "net.dup")) {
    EXPECT_EQ(std::count(deliver_ids.begin(), deliver_ids.end(), id), 2)
        << "dup id " << id;
  }

  // Delivery events carry the sampled latency.
  trace.for_each_in_category("net.deliver", [&](const sim::TraceEvent& e) {
    EXPECT_TRUE(obs::detail_field(e.detail, "latency").has_value())
        << e.detail;
  });
}

TEST(NetworkCausalTrace, IdsAssignedEvenWithTracingOff) {
  sim::Scheduler sched;
  sim::Network net(sched, sim::Rng(3));
  net.attach(1, [](sim::NodeAddr, const std::string&) {});
  EXPECT_EQ(net.send(0, 1, "a"), 1u);
  EXPECT_EQ(net.send(0, 1, "b"), 2u);
  EXPECT_EQ(net.next_message_id(), 3u);
}

// ---- End-to-end determinism: identical seed => byte-identical export. ----

std::string run_cluster_and_export(std::uint64_t seed) {
  storage::ClusterConfig config;
  config.nodes = 10;
  config.replication_factor = 4;
  config.seed = seed;
  config.metrics = true;
  config.tracing = true;
  config.drop_probability = 0.05;
  storage::AsaCluster cluster(config);

  int committed = 0;
  for (int u = 0; u < 5; ++u) {
    const storage::Guid guid = storage::Guid::named("guid:" +
                                                    std::to_string(u % 2));
    const storage::Pid pid =
        storage::Pid::of(storage::block_from("update " + std::to_string(u)));
    cluster.version_history().append(
        guid, pid,
        [&](const commit::CommitResult& r) { committed += r.committed; });
    cluster.run_for(2'000);
  }
  cluster.run();
  EXPECT_GT(committed, 0);

  cluster.snapshot_metrics();
  return obs::write_metrics_json(cluster.metrics(),
                                 {{"tool", "test"},
                                  {"seed", std::to_string(seed)}});
}

TEST(MetricsDeterminism, IdenticalSeedProducesByteIdenticalJson) {
  const std::string first = run_cluster_and_export(11);
  const std::string second = run_cluster_and_export(11);
  EXPECT_EQ(first, second);
  // And the export is substantive, not vacuously equal.
  const auto parsed = obs::parse_json(first);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_metrics_json(*parsed), std::nullopt);
  EXPECT_FALSE(parsed->find("histograms")->items().empty());
}

TEST(MetricsDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_cluster_and_export(11), run_cluster_and_export(12));
}

// ---- Flight recorder: ring semantics, wraparound, merge, JSON. ----

TEST(FlightRecorder, DropOldestWraparoundKeepsOrderAndSeq) {
  obs::FlightRecorder flight(3);
  EXPECT_TRUE(flight.enabled());
  for (int i = 0; i < 5; ++i) {
    flight.record(static_cast<std::uint64_t>(100 + i), 1, "cat",
                  "i=" + std::to_string(i));
  }
  flight.record(200, 2, "other", "x");
  EXPECT_EQ(flight.total_recorded(), 6u);

  const auto lane1 = flight.lane(1);
  ASSERT_EQ(lane1.size(), 3u);  // The two oldest events were evicted.
  EXPECT_EQ(lane1[0].detail, "i=2");
  EXPECT_EQ(lane1[1].detail, "i=3");
  EXPECT_EQ(lane1[2].detail, "i=4");
  EXPECT_LT(lane1[0].seq, lane1[1].seq);
  EXPECT_LT(lane1[1].seq, lane1[2].seq);
  // The global sequence preserves cross-lane order.
  const auto lane2 = flight.lane(2);
  ASSERT_EQ(lane2.size(), 1u);
  EXPECT_LT(lane1[2].seq, lane2[0].seq);
  EXPECT_EQ(flight.lanes(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(FlightRecorder, DisabledRecorderDropsEverything) {
  obs::FlightRecorder off(0);
  EXPECT_FALSE(off.enabled());
  off.record(1, 1, "cat", "detail");
  EXPECT_EQ(off.total_recorded(), 0u);
  EXPECT_TRUE(off.lanes().empty());
  EXPECT_TRUE(off.lane(1).empty());
}

TEST(FlightRecorder, DisabledComponentPathAllocatesNothing) {
  // Components guard every event behind one pointer test; with a null
  // recorder the detail string is never even built, so the instrumented
  // hot path performs zero allocations.
  obs::FlightRecorder* flight = nullptr;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    if (flight != nullptr) {
      flight->record(static_cast<std::uint64_t>(i), 1, "net.send",
                     "id=" + std::to_string(i) + " from=0 to=1");
    }
  }
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(FlightRecorder, MergeRerecordsPreservingTimeAndJsonNamesClusterLane) {
  obs::FlightRecorder a(2);
  obs::FlightRecorder b(2);
  a.record(10, 1, "a", "1");
  b.record(5, 1, "b", "1");
  b.record(6, obs::FlightRecorder::kClusterLane, "b", "2");
  a.merge(b);
  const auto lane1 = a.lane(1);
  ASSERT_EQ(lane1.size(), 2u);
  EXPECT_EQ(lane1[0].t, 10u);  // Merge appends: original time, new seq.
  EXPECT_EQ(lane1[1].t, 5u);
  EXPECT_LT(lane1[0].seq, lane1[1].seq);
  const obs::JsonValue json = a.to_json();
  EXPECT_NE(json.find("1"), nullptr);
  EXPECT_NE(json.find("cluster"), nullptr);
}

// ---- Span recorder: retry lifecycle, nesting, merge, JSON. ----

TEST(SpanRecorder, RetryLifecycleAndNesting) {
  obs::SpanRecorder rec;
  const std::uint64_t root = rec.open("commit", 0, 9, "g", 7, 0, 100);
  const std::uint64_t a1 = rec.open("attempt", root, 9, "g", 7, 71, 100);
  EXPECT_TRUE(rec.is_open(root));
  EXPECT_TRUE(rec.is_open(a1));
  rec.close(a1, 180, false, "retry");
  EXPECT_FALSE(rec.is_open(a1));
  const std::uint64_t a2 = rec.open("attempt", root, 9, "g", 7, 72, 180);
  rec.close(a2, 260, true);
  rec.close(root, 265, true, "decisive=3 attempts=2");
  rec.close(root, 999, false, "late");  // Double close is ignored.
  rec.close(0, 999, false);             // Id 0 (no span) is ignored.

  const auto& spans = rec.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "commit");
  EXPECT_EQ(spans[0].end, 265u);
  EXPECT_TRUE(spans[0].ok);
  EXPECT_EQ(spans[0].detail, "decisive=3 attempts=2");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_FALSE(spans[1].ok);
  EXPECT_EQ(spans[1].detail, "retry");
  EXPECT_TRUE(spans[2].ok);
  EXPECT_EQ(spans[2].update_id, 72u);
}

TEST(SpanRecorder, MergeOffsetsIdsAndParentLinks) {
  obs::SpanRecorder a;
  obs::SpanRecorder b;
  a.open("x", 0, 1, "g", 1, 1, 0);
  const std::uint64_t broot = b.open("y", 0, 2, "g", 2, 2, 5);
  b.point("p", broot, 2, "g", 2, 2, 9, true, "d");
  a.merge(b);
  ASSERT_EQ(a.spans().size(), 3u);
  EXPECT_EQ(a.spans()[1].id, 2u);
  EXPECT_EQ(a.spans()[1].parent, 0u);  // b's root stays a root.
  EXPECT_EQ(a.spans()[2].parent, 2u);  // b's child re-based onto new id.
  EXPECT_TRUE(a.spans()[2].closed);
  EXPECT_EQ(a.spans()[2].start, a.spans()[2].end);
}

TEST(SpansJson, ExportParsesAndValidates) {
  obs::SpanRecorder rec;
  const std::uint64_t root = rec.open("commit", 0, 1, "g", 1, 0, 10);
  rec.close(root, 20, true, "decisive=1 attempts=1");
  const std::string doc = obs::write_spans_json(rec, {{"tool", "test"}});
  const auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_spans_json(*parsed), std::nullopt);
  EXPECT_EQ(obs::validate_document_json(*parsed), std::nullopt);
}

TEST(SpansJson, ValidatorRejectsBrokenShape) {
  // parent must reference an earlier id.
  const auto bad_parent = obs::parse_json(
      "{\"schema\":\"asa-span/1\",\"meta\":{},\"spans\":[{\"id\":1,"
      "\"parent\":1,\"name\":\"x\",\"node\":0,\"guid\":\"\",\"request\":0,"
      "\"update\":0,\"start\":0,\"end\":1,\"ok\":true,\"closed\":true,"
      "\"detail\":\"\"}]}");
  ASSERT_TRUE(bad_parent.has_value());
  EXPECT_NE(obs::validate_spans_json(*bad_parent), std::nullopt);

  // end must not precede start.
  const auto bad_interval = obs::parse_json(
      "{\"schema\":\"asa-span/1\",\"meta\":{},\"spans\":[{\"id\":1,"
      "\"parent\":0,\"name\":\"x\",\"node\":0,\"guid\":\"\",\"request\":0,"
      "\"update\":0,\"start\":5,\"end\":1,\"ok\":true,\"closed\":true,"
      "\"detail\":\"\"}]}");
  ASSERT_TRUE(bad_interval.has_value());
  EXPECT_NE(obs::validate_spans_json(*bad_interval), std::nullopt);

  // spans must be an array.
  const auto bad_spans = obs::parse_json(
      "{\"schema\":\"asa-span/1\",\"meta\":{},\"spans\":{}}");
  ASSERT_TRUE(bad_spans.has_value());
  EXPECT_NE(obs::validate_spans_json(*bad_spans), std::nullopt);
}

TEST(DocumentJson, UnknownSchemaIsAnError) {
  const auto doc = obs::parse_json("{\"schema\":\"asa-bogus/9\"}");
  ASSERT_TRUE(doc.has_value());
  const auto error = obs::validate_document_json(*doc);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("unknown schema"), std::string::npos);
}

// ---- Merge-conflict accounting (the silent-skip fix) and its surfacing. ----

TEST(MetricsMerge, MismatchedHistogramBoundsAreCountedAndReported) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.histogram("h", {}, {10}).observe(1);
  b.histogram("h", {}, {20}).observe(1);
  a.merge(b);
  EXPECT_EQ(a.counter("metrics.merge_conflicts").value(), 1u);
  // The skipped series keeps its original shape.
  EXPECT_EQ(a.histogram("h", {}, {10}).count(), 1u);

  const std::string doc = obs::write_metrics_json(a, {{"tool", "t"}});
  const auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.has_value());
  const std::string report = obs::render_report(*parsed, {}, {});
  EXPECT_NE(report.find("histogram series skipped during merge"),
            std::string::npos);

  // Clean merges stay warning-free.
  obs::MetricsRegistry clean;
  clean.counter("c").inc();
  const auto clean_doc =
      obs::parse_json(obs::write_metrics_json(clean, {{"tool", "t"}}));
  ASSERT_TRUE(clean_doc.has_value());
  EXPECT_EQ(obs::render_report(*clean_doc, {}, {})
                .find("skipped during merge"),
            std::string::npos);
}

// ---- Critical-path attribution. ----

TEST(CriticalPath, AttributesPhasesFromJoinedSpans) {
  // One commit: a failed attempt (retry), then the decisive attempt whose
  // peer-side spans live on node 3.
  obs::SpanRecorder rec;
  const std::uint64_t root = rec.open("commit", 0, 100, "g1", 7, 0, 1000);
  const std::uint64_t a1 = rec.open("attempt", root, 100, "g1", 7, 71, 1100);
  rec.close(a1, 1500, false, "retry");
  const std::uint64_t a2 = rec.open("attempt", root, 100, "g1", 7, 72, 1500);
  const std::uint64_t vote = rec.open("vote-collect", 0, 3, "g1", 7, 72, 1600);
  rec.close(vote, 1900, true);
  const std::uint64_t quorum = rec.open("quorum", 0, 3, "g1", 7, 72, 1900);
  rec.point("journal-append", quorum, 3, "g1", 7, 72, 1950, true);
  rec.point("ack-sent", quorum, 3, "g1", 7, 72, 2000, true);
  rec.close(quorum, 2000, true);
  rec.close(a2, 2100, true);
  rec.close(root, 2100, true, "decisive=3 attempts=2");

  const auto doc =
      obs::parse_json(obs::write_spans_json(rec, {{"tool", "t"}}));
  ASSERT_TRUE(doc.has_value());
  const std::string report = obs::render_critical_path(*doc);
  EXPECT_NE(report.find("committed roots: 1"), std::string::npos);
  EXPECT_NE(report.find("decisive join: 1"), std::string::npos);
  EXPECT_NE(report.find("journal points: 1"), std::string::npos);
  // Phase budget: submit 0.10ms, retry 0.40, route 0.10, vote-collect
  // 0.30, quorum 0.10, ack 0.10 — the full 1.10ms total is attributed.
  EXPECT_NE(report.find("retry"), std::string::npos);
  EXPECT_NE(report.find("vote-collect"), std::string::npos);
  EXPECT_NE(report.find("attributed to named phases: 100.0%"),
            std::string::npos);
  EXPECT_NE(report.find("guid=g1"), std::string::npos);
}

// ---- Bench trend gate. ----

TEST(BenchCompare, GatesOnNsPerMessageDrift) {
  const auto make = [](std::int64_t wall_ns, std::uint64_t messages) {
    obs::MetricsRegistry reg;
    reg.gauge("exec.wall_ns", {{"impl", "interpreter"}}).set(wall_ns);
    reg.counter("exec.messages", {{"impl", "interpreter"}}).set(messages);
    const auto doc =
        obs::parse_json(obs::write_metrics_json(reg, {{"tool", "bench"}}));
    EXPECT_TRUE(doc.has_value());
    return *doc;
  };
  const obs::JsonValue baseline = make(1'000'000, 1000);  // 1000 ns/msg.

  const obs::BenchCompareResult within =
      obs::compare_bench_metrics(baseline, make(1'150'000, 1000), 0.20);
  EXPECT_TRUE(within.ok);
  EXPECT_NE(within.report.find("within tolerance"), std::string::npos);

  const obs::BenchCompareResult regressed =
      obs::compare_bench_metrics(baseline, make(1'300'000, 1000), 0.20);
  EXPECT_FALSE(regressed.ok);
  EXPECT_NE(regressed.report.find("GATE FAILED"), std::string::npos);

  const obs::BenchCompareResult sped_up_too_much =
      obs::compare_bench_metrics(baseline, make(700'000, 1000), 0.20);
  EXPECT_FALSE(sped_up_too_much.ok);  // Drift gates both directions.

  obs::MetricsRegistry empty;
  const auto none =
      obs::parse_json(obs::write_metrics_json(empty, {{"tool", "bench"}}));
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(obs::compare_bench_metrics(baseline, *none, 0.20).ok);
}

// ---- End-to-end: cluster spans + flight, deterministic. ----

namespace e2e {

std::string run_cluster_spans(std::uint64_t seed) {
  storage::ClusterConfig config;
  config.nodes = 10;
  config.seed = seed;
  config.flight_capacity = 32;
  config.spans = true;
  storage::AsaCluster cluster(config);
  for (int u = 0; u < 4; ++u) {
    const storage::Guid guid =
        storage::Guid::named("g" + std::to_string(u % 2));
    const storage::Pid pid =
        storage::Pid::of(storage::block_from("u" + std::to_string(u)));
    cluster.version_history().append(guid, pid,
                                     [](const commit::CommitResult&) {});
  }
  cluster.run();
  EXPECT_GT(cluster.flight().total_recorded(), 0u);
  return obs::write_spans_json(cluster.spans(), {{"tool", "test"}});
}

}  // namespace e2e

TEST(ClusterSpans, CommitsProduceJoinedSpansDeterministically) {
  const std::string first = e2e::run_cluster_spans(11);
  EXPECT_EQ(first, e2e::run_cluster_spans(11));

  const auto doc = obs::parse_json(first);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(obs::validate_document_json(*doc), std::nullopt);
  // The taxonomy actually appears: root commits, attempts, peer spans.
  EXPECT_NE(first.find("\"commit\""), std::string::npos);
  EXPECT_NE(first.find("\"attempt\""), std::string::npos);
  EXPECT_NE(first.find("\"vote-collect\""), std::string::npos);
  EXPECT_NE(first.find("\"quorum\""), std::string::npos);
  EXPECT_NE(first.find("\"journal-append\""), std::string::npos);
  EXPECT_NE(first.find("decisive="), std::string::npos);
  // And the critical-path renderer fully attributes the run.
  const std::string report = obs::render_critical_path(*doc);
  EXPECT_NE(report.find("attributed to named phases: 100.0%"),
            std::string::npos);
}

// ---- Post-mortem bundles. ----

TEST(Postmortem, SameSeedProducesByteIdenticalValidBundle) {
  storage::ChaosConfig config;
  config.seed = 1;
  config.equivocators = 2;
  config.burst = 2;
  config.updates = 4;
  config.guids = 1;
  config.blocks = 1;
  const auto build = [&config]() {
    obs::MetricsRegistry metrics(true);
    obs::FlightRecorder flight(64);
    obs::SpanRecorder spans;
    const storage::ChaosReport report = storage::run_plan(
        config, sim::FaultPlan(), &metrics, nullptr, &flight, &spans);
    obs::PostmortemViolations violations;
    for (const storage::Violation& v : report.violations) {
      violations.emplace_back(v.invariant, v.detail);
    }
    return obs::write_postmortem_json(
        {{"tool", "test"}, {"seed", std::to_string(config.seed)}},
        violations, {"plan line"}, {}, flight, metrics, spans);
  };
  const std::string first = build();
  EXPECT_EQ(first, build());

  const auto doc = obs::parse_json(first);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(obs::validate_postmortem_json(*doc), std::nullopt);
  EXPECT_EQ(obs::validate_document_json(*doc), std::nullopt);
  // The flight tails carry causal ids from the commit path.
  EXPECT_NE(first.find("guid="), std::string::npos);
  // And the renderer accepts the bundle.
  const std::string report = obs::render_postmortem(*doc);
  EXPECT_NE(report.find("post-mortem bundle"), std::string::npos);
  EXPECT_NE(report.find("flight-recorder tails"), std::string::npos);
}

TEST(Postmortem, ValidatorRejectsBrokenEmbeddedDocuments) {
  const auto bad = obs::parse_json(
      "{\"schema\":\"asa-postmortem/1\",\"meta\":{},\"violations\":[],"
      "\"plan\":[],\"shrunk_plan\":[],\"flight\":{},"
      "\"metrics\":{\"schema\":\"asa-metrics/1\"},"
      "\"spans\":{\"schema\":\"asa-span/1\",\"meta\":{},\"spans\":[]}}");
  ASSERT_TRUE(bad.has_value());
  const auto error = obs::validate_postmortem_json(*bad);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("embedded metrics"), std::string::npos);
}

}  // namespace
}  // namespace asa_repro
