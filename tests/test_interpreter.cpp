// Table-driven interpretation: instance lifecycle, shared immutable
// machines, terminal absorption, and agreement with the abstract model's
// reactions at every reachable state (a full conformance sweep rather than
// a sampled walk).
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "core/interpreter.hpp"

namespace asa_repro::fsm {
namespace {

TEST(Interpreter, StartsAtStart) {
  commit::CommitModel model(4);
  const StateMachine machine = model.generate_state_machine();
  FsmInstance inst(machine);
  EXPECT_EQ(inst.state(), machine.start());
  EXPECT_EQ(inst.state_name(), "F/0/F/0/F/T/F");
  EXPECT_FALSE(inst.finished());
}

TEST(Interpreter, ManyInstancesShareOneMachine) {
  commit::CommitModel model(4);
  const StateMachine machine = model.generate_state_machine();
  FsmInstance a(machine);
  FsmInstance b(machine);
  (void)a.deliver(commit::kUpdate);
  // b is unaffected by a's progress.
  EXPECT_NE(a.state(), b.state());
  EXPECT_EQ(&a.machine(), &b.machine());
}

TEST(Interpreter, TerminalStateAbsorbsEverything) {
  commit::CommitModel model(2);
  const StateMachine machine = model.generate_state_machine();
  FsmInstance inst(machine);
  (void)inst.deliver(commit::kUpdate);
  (void)inst.deliver(commit::kCommit);
  ASSERT_TRUE(inst.finished());
  const StateId final_state = inst.state();
  for (MessageId m = 0; m < machine.messages().size(); ++m) {
    EXPECT_EQ(inst.deliver(m), nullptr);
    EXPECT_EQ(inst.state(), final_state);
  }
}

TEST(Interpreter, ResetFromAnywhere) {
  commit::CommitModel model(4);
  const StateMachine machine = model.generate_state_machine();
  FsmInstance inst(machine);
  (void)inst.deliver(commit::kUpdate);
  (void)inst.deliver(commit::kVote);
  inst.reset();
  EXPECT_EQ(inst.state(), machine.start());
}

TEST(Interpreter, ReturnedTransitionIsTheMachines) {
  commit::CommitModel model(4);
  const StateMachine machine = model.generate_state_machine();
  FsmInstance inst(machine);
  const Transition* t = inst.deliver(commit::kUpdate);
  ASSERT_NE(t, nullptr);
  // The pointer aliases the machine's storage (no copying per delivery).
  const Transition* direct =
      machine.state(machine.start()).transition(commit::kUpdate);
  EXPECT_EQ(t, direct);
}

class InterpreterConformance
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(InterpreterConformance, EveryReachableStateAgreesWithTheModel) {
  // For every state of the PRUNED (unmerged) machine and every message,
  // the recorded transition's target and actions must equal a fresh
  // invocation of the abstract model's react() — the machine is a faithful
  // tabulation of the model.
  const std::uint32_t r = GetParam();
  commit::CommitModel model(r);
  GenerationOptions options;
  options.merge_equivalent = false;
  const StateMachine machine = model.generate_state_machine(options);

  for (const State& s : machine.states()) {
    const auto v = model.space().parse_name(s.name);
    ASSERT_TRUE(v.has_value()) << s.name;
    if (s.is_final) continue;
    for (MessageId m = 0; m < machine.messages().size(); ++m) {
      const Transition* t = s.transition(m);
      const auto reaction = model.react(*v, m);
      ASSERT_EQ(t != nullptr, reaction.has_value())
          << s.name << " message " << m;
      if (t == nullptr) continue;
      EXPECT_EQ(t->actions, reaction->actions) << s.name;
      EXPECT_EQ(machine.state(t->target).name,
                model.space().name(reaction->target))
          << s.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, InterpreterConformance,
                         ::testing::Values(2u, 4u, 7u));

}  // namespace
}  // namespace asa_repro::fsm
