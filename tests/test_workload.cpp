// Contention workload generation: zipf key popularity, read/write mix,
// open- vs closed-loop arrivals, per-writer substream independence.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "sim/rng.hpp"
#include "sim/workload.hpp"

namespace asa_repro::sim {
namespace {

std::vector<WorkloadOp> flatten(
    const std::vector<std::vector<WorkloadOp>>& per_writer) {
  std::vector<WorkloadOp> all;
  for (const auto& ops : per_writer) {
    all.insert(all.end(), ops.begin(), ops.end());
  }
  return all;
}

TEST(ZipfSampler, ZeroSkewIsUniform) {
  ZipfSampler sampler(4, 0.0);
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(sampler.probability(k), 0.25, 1e-9);
  }
}

TEST(ZipfSampler, SkewFavoursLowKeys) {
  ZipfSampler sampler(8, 1.0);
  // P(k) ~ 1/(k+1): strictly decreasing, hottest key clearly dominant.
  for (std::uint32_t k = 1; k < 8; ++k) {
    EXPECT_GT(sampler.probability(k - 1), sampler.probability(k));
  }
  EXPECT_GT(sampler.probability(0), 2.5 * sampler.probability(7));
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchProbabilities) {
  ZipfSampler sampler(6, 0.9);
  Rng rng(42);
  std::map<std::uint32_t, int> counts;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  for (std::uint32_t k = 0; k < 6; ++k) {
    const double expected = sampler.probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 0.15 * kDraws) << "key " << k;
    EXPECT_GT(counts[k], 0) << "key " << k;
  }
}

TEST(Workload, DeterministicForConfigAndSeed) {
  WorkloadConfig config;
  config.writers = 3;
  config.operations = 30;
  config.read_fraction = 0.3;
  const auto a = generate_workload(config, 7);
  const auto b = generate_workload(config, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    ASSERT_EQ(a[w].size(), b[w].size());
    for (std::size_t i = 0; i < a[w].size(); ++i) {
      EXPECT_EQ(a[w][i].at, b[w][i].at);
      EXPECT_EQ(a[w][i].key, b[w][i].key);
      EXPECT_EQ(a[w][i].read, b[w][i].read);
    }
  }
}

TEST(Workload, OperationsSplitRoundRobinAcrossWriters) {
  WorkloadConfig config;
  config.writers = 3;
  config.operations = 10;  // Not divisible: writers get 4, 3, 3.
  const auto schedule = generate_workload(config, 1);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].size() + schedule[1].size() + schedule[2].size(),
            10u);
  for (const auto& ops : schedule) {
    EXPECT_GE(ops.size(), 3u);
    EXPECT_LE(ops.size(), 4u);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(ops[i].sequence, i);  // Per-writer issue order.
      EXPECT_LT(ops[i].key, config.keys);
    }
  }
}

TEST(Workload, AddingAWriterDoesNotPerturbExistingWriters) {
  // Writer substreams are seed-split by writer id: the first N writers'
  // key/read draws are identical whether or not more writers exist.
  WorkloadConfig small;
  small.writers = 2;
  small.operations = 20;
  small.read_fraction = 0.5;
  WorkloadConfig big = small;
  big.writers = 4;
  big.operations = 40;  // Same 10 ops per writer.
  const auto a = generate_workload(small, 99);
  const auto b = generate_workload(big, 99);
  for (std::size_t w = 0; w < 2; ++w) {
    ASSERT_EQ(a[w].size(), b[w].size());
    for (std::size_t i = 0; i < a[w].size(); ++i) {
      EXPECT_EQ(a[w][i].key, b[w][i].key);
      EXPECT_EQ(a[w][i].read, b[w][i].read);
    }
  }
}

TEST(Workload, ReadFractionExtremes) {
  WorkloadConfig config;
  config.operations = 40;
  config.read_fraction = 0.0;
  for (const WorkloadOp& op : flatten(generate_workload(config, 5))) {
    EXPECT_FALSE(op.read);
  }
  config.read_fraction = 1.0;
  for (const WorkloadOp& op : flatten(generate_workload(config, 5))) {
    EXPECT_TRUE(op.read);
  }
}

TEST(Workload, ReadFractionIsRoughlyHonoured) {
  WorkloadConfig config;
  config.writers = 4;
  config.operations = 400;
  config.read_fraction = 0.25;
  int reads = 0;
  for (const WorkloadOp& op : flatten(generate_workload(config, 11))) {
    if (op.read) ++reads;
  }
  EXPECT_GT(reads, 60);
  EXPECT_LT(reads, 140);
}

TEST(Workload, ClosedLoopStaggersWritersFromStart) {
  WorkloadConfig config;
  config.writers = 4;
  config.operations = 16;
  config.open_loop = false;
  const auto schedule = generate_workload(config, 3);
  for (const auto& ops : schedule) {
    ASSERT_FALSE(ops.empty());
    EXPECT_GE(ops.front().at, config.start);
  }
}

TEST(Workload, OpenLoopArrivalsAreMonotonePerWriter) {
  WorkloadConfig config;
  config.writers = 2;
  config.operations = 40;
  config.open_loop = true;
  config.mean_interarrival = 10'000;
  const auto schedule = generate_workload(config, 21);
  for (const auto& ops : schedule) {
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_GE(ops[i].at, ops[i - 1].at);
    }
    EXPECT_GE(ops.front().at, config.start);
  }
  // The exponential clock actually spreads arrivals instead of stacking
  // everything on the start time.
  const auto all = flatten(schedule);
  Time latest = 0;
  for (const WorkloadOp& op : all) latest = std::max(latest, op.at);
  EXPECT_GT(latest, config.start + config.mean_interarrival);
}

TEST(Workload, ZipfSkewConcentratesTraffic) {
  WorkloadConfig config;
  config.writers = 4;
  config.operations = 400;
  config.keys = 8;
  config.zipf = 1.2;
  std::map<std::uint32_t, int> counts;
  for (const WorkloadOp& op : flatten(generate_workload(config, 13))) {
    ++counts[op.key];
  }
  // The hottest key must clearly dominate the coldest.
  int hottest = 0, coldest = config.operations;
  for (std::uint32_t k = 0; k < config.keys; ++k) {
    hottest = std::max(hottest, counts[k]);
    coldest = std::min(coldest, counts[k]);
  }
  EXPECT_GT(hottest, 3 * std::max(coldest, 1));
}

}  // namespace
}  // namespace asa_repro::sim
