// Composition model checker (src/check/composition): the pristine
// composed protocol must close with zero findings, every composition-level
// mutation must be caught, and exported counterexamples must round-trip
// through asa-replay/1 and reproduce against the concrete runtime.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/composition.hpp"
#include "check/findings.hpp"
#include "commit/replay.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace asa_repro {
namespace {

bool has_check(const check::Findings& findings, std::string_view name) {
  for (const check::Finding& f : findings) {
    if (f.check == name) return true;
  }
  return false;
}

check::CompositionResult run_mutated(const std::string& mutation) {
  check::CompositionOptions options;
  options.r = 4;
  options.mutation = mutation;
  return check::check_composition(options);
}

// ---- Pristine exploration ----

TEST(Composition, PristineR4ClosesWithZeroFindings) {
  check::CompositionOptions options;
  options.r = 4;
  const check::CompositionResult result = check::check_composition(options);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GT(result.stats.states, 100u);
  EXPECT_GT(result.stats.transitions, result.stats.states);
  // The absorb closure must be pulling weight; without it r=4 does not
  // close in test time.
  EXPECT_GT(result.stats.absorbed, 0u);
  EXPECT_GT(result.checks_run, 0u);
  EXPECT_EQ(result.plans.size(), result.findings.size());
  // Nothing to export on a clean run.
  EXPECT_EQ(check::preferred_replay(result), result.findings.size());
}

TEST(Composition, PristineR5ClosesWithZeroFindings) {
  check::CompositionOptions options;
  options.r = 5;
  const check::CompositionResult result = check::check_composition(options);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_TRUE(result.stats.complete);
}

TEST(Composition, TruncationIsReportedAsSentinelFinding) {
  check::CompositionOptions options;
  options.r = 6;
  options.max_states = 100;  // Force truncation.
  const check::CompositionResult result = check::check_composition(options);
  EXPECT_FALSE(result.stats.complete);
  EXPECT_TRUE(has_check(result.findings, "composition.state_bound"));
  // The sentinel is not a counterexample and must never be exported.
  EXPECT_EQ(check::preferred_replay(result), result.findings.size());
}

TEST(Composition, RejectsInvalidOptions) {
  check::CompositionOptions tiny;
  tiny.r = 1;
  EXPECT_THROW((void)check::check_composition(tiny), std::invalid_argument);

  check::CompositionOptions unknown;
  unknown.mutation = "comp.no_such_mutation";
  EXPECT_THROW((void)check::check_composition(unknown),
               std::invalid_argument);
}

// ---- Mutation self-test ----

TEST(Composition, CatalogueListsFiveMutations) {
  const std::vector<std::string>& names = check::composition_mutations();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "comp.weak_quorum");
}

TEST(Composition, SelfTestDetectsEveryMutation) {
  check::CompositionOptions base;
  base.r = 4;
  const check::MutationReport report =
      check::run_composition_mutation_self_test(base);
  ASSERT_EQ(report.outcomes.size(),
            check::composition_mutations().size());
  for (const check::MutationOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.detected) << o.name << " escaped the checker";
    EXPECT_FALSE(o.finding.empty()) << o.name;
    EXPECT_FALSE(o.description.empty()) << o.name;
  }
  EXPECT_TRUE(report.all_detected());
}

TEST(Composition, WeakQuorumTripsQuorumJustification) {
  const check::CompositionResult result = run_mutated("comp.weak_quorum");
  EXPECT_TRUE(has_check(result.findings, "composition.quorum_justified"));
}

TEST(Composition, DropRetryTripsTermination) {
  const check::CompositionResult result = run_mutated("comp.drop_retry");
  EXPECT_TRUE(has_check(result.findings, "composition.termination"));
}

TEST(Composition, WeakAckTripsAckQuorum) {
  const check::CompositionResult result = run_mutated("comp.weak_ack");
  EXPECT_TRUE(has_check(result.findings, "composition.ack_quorum"));
}

// ---- Counterexample export and replay ----

TEST(Composition, ExportedPlanRoundTripsThroughSerialization) {
  const check::CompositionResult result = run_mutated("comp.dup_vote");
  const std::size_t idx = check::preferred_replay(result);
  ASSERT_LT(idx, result.findings.size());
  const commit::ReplayPlan& plan = result.plans[idx];
  EXPECT_EQ(plan.mutation, "comp.dup_vote");
  EXPECT_EQ(plan.check, result.findings[idx].check);
  EXPECT_FALSE(plan.schedule.empty());
  // The finding's schedule lines are the serialized plan steps.
  ASSERT_EQ(result.findings[idx].schedule.size(), plan.schedule.size());
  for (std::size_t i = 0; i < plan.schedule.size(); ++i) {
    EXPECT_EQ(result.findings[idx].schedule[i], plan.schedule[i].serialize());
  }

  const std::optional<commit::ReplayPlan> parsed =
      commit::ReplayPlan::parse(plan.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->r, plan.r);
  EXPECT_EQ(parsed->f, plan.f);
  EXPECT_EQ(parsed->mutation, plan.mutation);
  EXPECT_EQ(parsed->check, plan.check);
  EXPECT_EQ(parsed->schedule, plan.schedule);
  EXPECT_EQ(parsed->faults.size(), plan.faults.size());
}

TEST(Composition, DupVoteCounterexampleReproducesInRuntime) {
  const check::CompositionResult result = run_mutated("comp.dup_vote");
  const std::size_t idx = check::preferred_replay(result);
  ASSERT_LT(idx, result.findings.size());
  const commit::ReplayOutcome outcome =
      commit::run_replay(result.plans[idx]);
  EXPECT_TRUE(outcome.supported);
  EXPECT_TRUE(outcome.reproduced) << outcome.description;
}

TEST(Composition, ModelOnlyMutationReplayIsSkippedNotFailed) {
  const check::CompositionResult result =
      run_mutated("comp.ack_before_record");
  const std::size_t idx = check::preferred_replay(result);
  ASSERT_LT(idx, result.findings.size());
  const commit::ReplayOutcome outcome =
      commit::run_replay(result.plans[idx]);
  // Recording decoupled from the commit decision has no runtime twin; the
  // replay must report "unsupported", never a false "not reproduced".
  EXPECT_FALSE(outcome.supported);
  EXPECT_FALSE(outcome.reproduced);
}

// ---- Findings document: schedules and group timings ----

TEST(Composition, FindingsJsonCarriesScheduleAndWallClockTimings) {
  const check::CompositionResult result = run_mutated("comp.weak_quorum");
  const std::size_t idx = check::preferred_replay(result);
  ASSERT_LT(idx, result.findings.size());

  const std::vector<check::GroupTiming> timings = {
      {"composition_r4", 12}};
  const std::string json = check::write_findings_json(
      result.findings, {{"tool", "test"}, {"mode", "protocol"}},
      result.checks_run, timings);
  const std::optional<obs::JsonValue> parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(obs::validate_findings_json(*parsed).has_value());
  EXPECT_NE(json.find("\"schedule\""), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\""), std::string::npos);
  EXPECT_NE(json.find("\"wall\""), std::string::npos);
}

}  // namespace
}  // namespace asa_repro
