// Structural analysis of generated machines: simple/phase transition
// split, completion distances, dead-state detection, SCC structure.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "core/analysis.hpp"

namespace asa_repro::fsm {
namespace {

State state(std::string name, std::vector<Transition> transitions,
            bool is_final = false) {
  State s;
  s.name = std::move(name);
  s.transitions = std::move(transitions);
  s.is_final = is_final;
  return s;
}

Transition tr(MessageId m, StateId target, ActionList actions = {}) {
  Transition t;
  t.message = m;
  t.actions = std::move(actions);
  t.target = target;
  return t;
}

TEST(Analysis, CountsAndDistancesOnToyMachine) {
  // start --a--> mid --b[x]--> finish, plus a trap state nobody can leave.
  const StateMachine m(
      {"a", "b"},
      {
          state("start", {tr(0, 1)}),
          state("mid", {tr(1, 2, {"x"})}),
          state("finish", {}, true),
          state("trap", {tr(0, 3)}),
      },
      0, 2);
  const MachineAnalysis a = analyze(m);
  EXPECT_EQ(a.states, 4u);
  EXPECT_EQ(a.transitions, 3u);
  EXPECT_EQ(a.final_states, 1u);
  EXPECT_EQ(a.simple_transitions, 2u);
  EXPECT_EQ(a.phase_transitions, 1u);
  EXPECT_EQ(a.shortest_completion, 2);
  ASSERT_EQ(a.dead_states.size(), 1u);
  EXPECT_EQ(m.state(a.dead_states[0]).name, "trap");
  EXPECT_EQ(a.nontrivial_sccs, 1u);  // The trap's self-loop.
  EXPECT_EQ(a.transitions_per_message.at("a"), 2u);
  EXPECT_EQ(a.action_frequency.at("x"), 1u);
}

class CommitAnalysis : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CommitAnalysis, CommitMachineHasNoDeadStates) {
  // Every live state of the commit FSM can still finish (commits remain
  // applicable until the threshold): the generated protocol has no dead
  // ends. Deadlock in deployment is a liveness issue (votes may never
  // come), never a structural trap.
  const std::uint32_t r = GetParam();
  commit::CommitModel model(r);
  const StateMachine machine = model.generate_state_machine();
  const MachineAnalysis a = analyze(machine);
  EXPECT_TRUE(a.dead_states.empty());
  EXPECT_EQ(a.final_states, 1u);
  // From the start, the fastest completion is f+1 commit receipts.
  EXPECT_EQ(a.shortest_completion,
            static_cast<std::int64_t>(model.commit_threshold()));
  // Phase transitions exist (threshold crossings) and so do simple ones.
  EXPECT_GT(a.phase_transitions, 0u);
  EXPECT_GT(a.simple_transitions, 0u);
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, CommitAnalysis,
                         ::testing::Values(2u, 4u, 7u, 13u));

TEST(Analysis, CommitMachineCycleStructure) {
  // free/not_free flips create cycles among live states; the analysis must
  // see at least one non-trivial SCC.
  commit::CommitModel model(4);
  const MachineAnalysis a = analyze(model.generate_state_machine());
  EXPECT_GT(a.nontrivial_sccs, 0u);
}

TEST(Analysis, ReportMentionsEverySection) {
  commit::CommitModel model(4);
  const MachineAnalysis a = analyze(model.generate_state_machine());
  const std::string report = a.to_string();
  EXPECT_NE(report.find("states:"), std::string::npos);
  EXPECT_NE(report.find("phase"), std::string::npos);
  EXPECT_NE(report.find("dead states:            0"), std::string::npos);
  EXPECT_NE(report.find("->vote"), std::string::npos);
  EXPECT_NE(report.find("not_free:"), std::string::npos);
}

TEST(Analysis, EmptyMachine) {
  const StateMachine m({"a"}, {}, kNoState, kNoState);
  const MachineAnalysis a = analyze(m);
  EXPECT_EQ(a.states, 0u);
  EXPECT_EQ(a.transitions, 0u);
  EXPECT_TRUE(a.dead_states.empty());
}

}  // namespace
}  // namespace asa_repro::fsm
