// Property-based testing of the generation engine itself: randomly
// generated abstract models (random state spaces, random reaction tables)
// must flow through the whole pipeline preserving behaviour — merging is
// behaviour-preserving, pruning keeps exactly the reachable states, XML
// round-trips, and the interpreter tabulates the model faithfully. This
// checks the ENGINE independent of any particular protocol.
#include <gtest/gtest.h>

#include "core/abstract_model.hpp"
#include "core/analysis.hpp"
#include "core/equivalence.hpp"
#include "core/interpreter.hpp"
#include "core/minimize.hpp"
#include "core/render/xml_parser.hpp"
#include "core/render/xml_renderer.hpp"
#include "sim/rng.hpp"

namespace asa_repro::fsm {
namespace {

/// A model whose reactions are a deterministic pseudo-random function of
/// (state, message): some messages are inapplicable, targets are random
/// in-range vectors, actions drawn from a small alphabet, and a pseudo-
/// random subset of states is final.
class RandomModel : public AbstractModel {
 public:
  explicit RandomModel(std::uint64_t seed) : seed_(seed) {
    sim::Rng rng(seed);
    // 1-3 components with small cardinalities; 2-4 messages.
    std::vector<StateComponent> components;
    const std::size_t arity = 1 + rng.below(3);
    for (std::size_t i = 0; i < arity; ++i) {
      const auto max = static_cast<std::uint32_t>(1 + rng.below(4));
      components.push_back(
          int_component("c" + std::to_string(i), max));
    }
    std::vector<std::string> messages;
    const std::size_t message_count = 2 + rng.below(3);
    for (std::size_t i = 0; i < message_count; ++i) {
      messages.push_back("m" + std::to_string(i));
    }
    init_abstract_model(StateSpace(std::move(components)),
                        std::move(messages));
  }

  [[nodiscard]] StateVector start_state() const override {
    return StateVector(space().arity(), 0);
  }

  [[nodiscard]] bool is_final(const StateVector& s) const override {
    return mix(space().encode(s), 0xF1A7) % 23 == 0;  // ~4% final.
  }

  [[nodiscard]] std::optional<Reaction> react(
      const StateVector& s, MessageId m) const override {
    const StateIndex index = space().encode(s);
    const std::uint64_t h = mix(index, 0x1000 + m);
    if (h % 5 == 0) return std::nullopt;  // ~20% inapplicable.
    Reaction r;
    // Deterministic pseudo-random in-range target.
    r.target.reserve(space().arity());
    std::uint64_t t = mix(h, 0xBEEF);
    for (std::size_t i = 0; i < space().arity(); ++i) {
      const std::uint32_t card = space().components()[i].cardinality();
      r.target.push_back(static_cast<std::uint32_t>(t % card));
      t /= card;
    }
    // 0-2 actions from a 3-letter alphabet.
    const std::uint64_t a = mix(h, 0xAC7);
    const std::size_t action_count = a % 3;
    for (std::size_t i = 0; i < action_count; ++i) {
      r.actions.push_back(std::string(1, static_cast<char>('x' + (a >> (8 * i)) % 3)));
    }
    return r;
  }

 private:
  static std::uint64_t mix(std::uint64_t x, std::uint64_t salt) {
    x += salt * 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t seed_;
};

class RandomModels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModels, PipelineInvariantsHold) {
  RandomModel model(GetParam());
  GenerationReport report;
  GenerationOptions prune_only;
  prune_only.merge_equivalent = false;
  const StateMachine pruned = model.generate_state_machine(prune_only);
  const StateMachine merged = model.generate_state_machine({}, &report);

  // Merging never grows the machine and preserves behaviour exactly.
  EXPECT_LE(merged.state_count(), pruned.state_count());
  const auto divergence = find_divergence(pruned, merged);
  EXPECT_FALSE(divergence.has_value())
      << "seed " << GetParam() << ": " << divergence->reason;

  // Pruning keeps exactly the reachable set: every state of the pruned
  // machine is reachable from the start by construction — verify by BFS.
  std::vector<bool> reachable(pruned.state_count(), false);
  std::vector<StateId> stack{pruned.start()};
  reachable[pruned.start()] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const Transition& t : pruned.state(s).transitions) {
      if (!reachable[t.target]) {
        reachable[t.target] = true;
        stack.push_back(t.target);
      }
    }
  }
  for (StateId s = 0; s < pruned.state_count(); ++s) {
    EXPECT_TRUE(reachable[s]) << "seed " << GetParam() << " state "
                              << pruned.state(s).name;
  }

  // Final states never have outgoing transitions.
  for (const State& s : merged.states()) {
    if (s.is_final) {
      EXPECT_TRUE(s.transitions.empty());
    }
  }

  // The XML artefact round-trips to an identical machine.
  std::string error;
  const auto parsed =
      parse_state_machine_xml(XmlRenderer().render(merged), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(trace_equivalent(merged, *parsed));
  EXPECT_EQ(parsed->state_count(), merged.state_count());

  // Minimization is idempotent: the merged machine is already minimal.
  EXPECT_EQ(minimize(merged).state_count(), merged.state_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(RandomModelsDetail, InterpreterMatchesModelEverywhere) {
  // On a handful of seeds, cross-check every (state, message) of the
  // pruned machine against a fresh react() call.
  for (std::uint64_t seed : {3ull, 17ull, 29ull}) {
    RandomModel model(seed);
    GenerationOptions prune_only;
    prune_only.merge_equivalent = false;
    const StateMachine machine = model.generate_state_machine(prune_only);
    for (const State& s : machine.states()) {
      if (s.is_final) continue;
      const auto v = model.space().parse_name(s.name);
      ASSERT_TRUE(v.has_value());
      for (MessageId m = 0; m < machine.messages().size(); ++m) {
        const Transition* t = s.transition(m);
        const auto reaction = model.react(*v, m);
        ASSERT_EQ(t != nullptr, reaction.has_value());
        if (t != nullptr) {
          EXPECT_EQ(t->actions, reaction->actions);
        }
      }
    }
  }
}

}  // namespace
}  // namespace asa_repro::fsm
