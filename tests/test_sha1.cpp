// SHA-1 correctness against the RFC 3174 / FIPS 180 test vectors, plus
// incremental-update and framing edge cases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hex.hpp"
#include "crypto/sha1.hpp"

namespace asa_repro::crypto {
namespace {

std::string hex_of(std::string_view text) {
  const Sha1Digest d = Sha1::hash(text);
  return to_hex({d.data(), d.size()});
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_of(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_of("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174Vector2) {
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  const std::string input(1'000'000, 'a');
  EXPECT_EQ(hex_of(input), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(hex_of("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, ExactBlockBoundary) {
  // 55/56/57 bytes straddle the length-field boundary in padding; 64 is an
  // exact block. Incremental and one-shot paths must agree on all of them.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const std::string input(n, 'q');
    Sha1 h;
    h.update(input);
    const Sha1Digest d1 = h.finalize();
    EXPECT_EQ(d1, Sha1::hash(input)) << "length " << n;
  }
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string text =
      "The finite state machine is a widely used abstraction for describing "
      "and reasoning about distributed algorithms.";
  for (std::size_t split = 0; split <= text.size(); split += 7) {
    Sha1 h;
    h.update(text.substr(0, split));
    h.update(text.substr(split));
    EXPECT_EQ(h.finalize(), Sha1::hash(text)) << "split at " << split;
  }
}

TEST(Sha1, ManySmallUpdates) {
  Sha1 h;
  std::string whole;
  for (int i = 0; i < 1000; ++i) {
    const std::string piece = std::to_string(i) + ";";
    h.update(piece);
    whole += piece;
  }
  EXPECT_EQ(h.finalize(), Sha1::hash(whole));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("first");
  (void)h.finalize();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finalize(), Sha1::hash("abc"));
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  // Content addressing sanity: nearby inputs do not collide.
  std::vector<Sha1Digest> digests;
  for (int i = 0; i < 256; ++i) {
    digests.push_back(Sha1::hash("block:" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]);
    }
  }
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0x7F, 0x80,
                                           0xAB, 0xCD, 0xEF, 0xFF};
  const std::string hex = to_hex({bytes.data(), bytes.size()});
  EXPECT_EQ(hex, "00017f80abcdefff");
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

TEST(Hex, AcceptsUpperCase) {
  const auto bytes = from_hex("DEADBEEF");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(to_hex({bytes->data(), bytes->size()}), "deadbeef");
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());     // Odd length.
  EXPECT_FALSE(from_hex("zz").has_value());      // Non-hex.
  EXPECT_FALSE(from_hex("a b").has_value());     // Whitespace.
  EXPECT_TRUE(from_hex("").has_value());         // Empty is valid (empty).
  EXPECT_TRUE(from_hex("")->empty());
}

}  // namespace
}  // namespace asa_repro::crypto
