// Full-stack integration: the AsaCluster wiring Chord + storage nodes +
// commit peers + client services, exercising the paper's two services
// (data storage, version history) end to end on the simulated network.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/cluster.hpp"

namespace asa_repro::storage {
namespace {

ClusterConfig small_cluster(std::uint64_t seed = 42) {
  ClusterConfig config;
  config.nodes = 12;
  config.replication_factor = 4;
  config.seed = seed;
  return config;
}

// ---- Data storage service (section 2.1). ----

TEST(ClusterDataStore, StoreThenRetrieve) {
  AsaCluster cluster(small_cluster());
  StoreResult stored;
  const Pid pid = cluster.data_store().store(
      block_from("the first block"),
      [&](const StoreResult& r) { stored = r; });
  cluster.run();
  EXPECT_TRUE(stored.ok);
  EXPECT_EQ(stored.pid, pid);
  EXPECT_GE(stored.acks, 3u);  // r - f = 3.

  RetrieveResult got;
  cluster.data_store().retrieve(pid, [&](const RetrieveResult& r) { got = r; });
  cluster.run();
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.block, block_from("the first block"));
}

TEST(ClusterDataStore, RetrieveUnknownPidFails) {
  AsaCluster cluster(small_cluster());
  RetrieveResult got;
  bool done = false;
  cluster.data_store().retrieve(Pid::of(block_from("never stored")),
                                [&](const RetrieveResult& r) {
                                  got = r;
                                  done = true;
                                });
  cluster.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.replicas_tried, 4u);
}

TEST(ClusterDataStore, CorruptReplicaDetectedAndFailedOver) {
  AsaCluster cluster(small_cluster(7));
  StoreResult stored;
  const Pid pid = cluster.data_store().store(
      block_from("verify me"), [&](const StoreResult& r) { stored = r; });
  cluster.run();
  ASSERT_TRUE(stored.ok);

  // Corrupt every node (they lie on the wire); retrieval must fail after
  // exhausting replicas, counting verification failures.
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    cluster.corrupt_node(i);
  }
  RetrieveResult got;
  cluster.data_store().retrieve(pid, [&](const RetrieveResult& r) { got = r; });
  cluster.run();
  EXPECT_FALSE(got.ok);
  EXPECT_GT(got.verification_failures, 0u);

  // Heal one replica holder: retrieval succeeds again via failover.
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    cluster.host(i).store().set_corrupt(false);
  }
  cluster.data_store().retrieve(pid, [&](const RetrieveResult& r) { got = r; });
  cluster.run();
  EXPECT_TRUE(got.ok);
}

TEST(ClusterDataStore, StoreFailsWhenQuorumUnreachable) {
  // With more than f replicas refusing writes, the (r-f) store quorum is
  // unreachable and the operation must fail cleanly.
  AsaCluster cluster(small_cluster(15));
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    cluster.host(i).store().set_refuse_writes(true);
  }
  StoreResult stored;
  bool done = false;
  cluster.data_store().store(block_from("doomed"), [&](const StoreResult& r) {
    stored = r;
    done = true;
  });
  cluster.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(stored.ok);
  EXPECT_EQ(stored.acks, 0u);
}

TEST(ClusterDataStore, ClosenessOrderIsDeterministic) {
  // The closeness policy tries replicas in a fixed order, so repeated
  // retrievals hit the same (nearest) replica first.
  AsaCluster cluster(small_cluster(29));
  cluster.data_store().set_retrieve_order(RetrieveOrder::kCloseness);
  StoreResult stored;
  const Pid pid = cluster.data_store().store(
      block_from("near me"), [&](const StoreResult& r) { stored = r; });
  cluster.run();
  ASSERT_TRUE(stored.ok);
  for (int i = 0; i < 3; ++i) {
    RetrieveResult got;
    cluster.data_store().retrieve(pid,
                                  [&](const RetrieveResult& r) { got = r; });
    cluster.run();
    ASSERT_TRUE(got.ok);
    EXPECT_EQ(got.replicas_tried, 1u);  // Always first try, same node.
  }
}

TEST(ClusterDataStore, ManyBlocksRoundTrip) {
  AsaCluster cluster(small_cluster(9));
  std::vector<Pid> pids;
  int stored_ok = 0;
  for (int i = 0; i < 20; ++i) {
    pids.push_back(cluster.data_store().store(
        block_from("block number " + std::to_string(i)),
        [&](const StoreResult& r) { stored_ok += r.ok ? 1 : 0; }));
  }
  cluster.run();
  EXPECT_EQ(stored_ok, 20);
  int retrieved_ok = 0;
  for (const Pid& pid : pids) {
    cluster.data_store().retrieve(
        pid, [&](const RetrieveResult& r) { retrieved_ok += r.ok ? 1 : 0; });
  }
  cluster.run();
  EXPECT_EQ(retrieved_ok, 20);
}

// ---- Version history service (section 2.2). ----

TEST(ClusterVersionHistory, AppendAndRead) {
  AsaCluster cluster(small_cluster(3));
  const Guid guid = Guid::named("document.txt");
  const Pid v1 = Pid::of(block_from("version 1"));
  const Pid v2 = Pid::of(block_from("version 2"));

  int committed = 0;
  cluster.version_history().append(
      guid, v1, [&](const commit::CommitResult& r) {
        committed += r.committed ? 1 : 0;
      });
  cluster.run();
  cluster.version_history().append(
      guid, v2, [&](const commit::CommitResult& r) {
        committed += r.committed ? 1 : 0;
      });
  cluster.run();
  EXPECT_EQ(committed, 2);

  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  ASSERT_EQ(read.versions.size(), 2u);
  EXPECT_EQ(read.versions[0], v1.to_uint64());
  EXPECT_EQ(read.versions[1], v2.to_uint64());
}

TEST(ClusterVersionHistory, IndependentGuidsDoNotInterfere) {
  AsaCluster cluster(small_cluster(5));
  const Guid a = Guid::named("a");
  const Guid b = Guid::named("b");
  int committed = 0;
  cluster.version_history().append(
      a, Pid::of(block_from("a1")),
      [&](const commit::CommitResult& r) { committed += r.committed; });
  cluster.version_history().append(
      b, Pid::of(block_from("b1")),
      [&](const commit::CommitResult& r) { committed += r.committed; });
  cluster.run();
  EXPECT_EQ(committed, 2);

  HistoryReadResult read_a, read_b;
  cluster.version_history().read(
      a, [&](const HistoryReadResult& r) { read_a = r; });
  cluster.version_history().read(
      b, [&](const HistoryReadResult& r) { read_b = r; });
  cluster.run();
  ASSERT_EQ(read_a.versions.size(), 1u);
  ASSERT_EQ(read_b.versions.size(), 1u);
  EXPECT_EQ(read_a.versions[0], Pid::of(block_from("a1")).to_uint64());
  EXPECT_EQ(read_b.versions[0], Pid::of(block_from("b1")).to_uint64());
}

TEST(ClusterVersionHistory, ReadToleratesCorruptHistoryServer) {
  // One Byzantine peer in the GUID's peer set cannot change the agreed
  // read (f+1 consistency rule).
  AsaCluster cluster(small_cluster(8));
  const Guid guid = Guid::named("attacked");
  const Pid v1 = Pid::of(block_from("true version"));
  bool committed = false;
  cluster.version_history().append(
      guid, v1,
      [&](const commit::CommitResult& r) { committed = r.committed; });
  cluster.run();
  ASSERT_TRUE(committed);

  // Crash one member of the peer set (fewer replies, still >= f+1).
  const auto peers = cluster.peer_set(guid);
  ASSERT_GE(peers.size(), 3u);
  cluster.network().detach(peers[0]);

  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  ASSERT_EQ(read.versions.size(), 1u);
  EXPECT_EQ(read.versions[0], v1.to_uint64());
}

// ---- Replica maintenance (background repair). ----

TEST(ClusterMaintenance, RepairsDamagedReplicasInPlace) {
  AsaCluster cluster(small_cluster(11));
  StoreResult stored;
  const Pid pid = cluster.data_store().store(
      block_from("keep me alive"), [&](const StoreResult& r) { stored = r; });
  cluster.run();
  ASSERT_TRUE(stored.ok);
  cluster.maintainer().track(pid);

  // Damage one replica at rest.
  NodeHost& victim = cluster.host_for_key(pid.as_key());
  victim.store().corrupt_stored(pid);
  EXPECT_FALSE(victim.store().holds_intact(pid));

  EXPECT_GE(cluster.maintainer().scan(), 1u);
  EXPECT_TRUE(victim.store().holds_intact(pid));
}

// ---- Peer-set membership maintenance (section 2.2). ----

TEST(ClusterMembership, ReplacementMemberAdoptsHistory) {
  ClusterConfig cfg = small_cluster(17);
  cfg.nodes = 16;
  AsaCluster cluster(cfg);
  const Guid guid = Guid::named("migrating-history");

  // Commit two versions.
  int committed = 0;
  for (const char* text : {"v0", "v1"}) {
    cluster.version_history().append(
        guid, Pid::of(block_from(text)),
        [&](const commit::CommitResult& r) { committed += r.committed; });
    cluster.run();
  }
  ASSERT_EQ(committed, 2);

  // Crash one member; the ring heals and the peer set gains a replacement
  // node with no local history.
  const auto old_peers = cluster.peer_set(guid);
  cluster.crash_node(old_peers[0]);
  const auto new_peers = cluster.peer_set(guid);
  ASSERT_NE(new_peers, old_peers);
  bool has_empty_member = false;
  for (sim::NodeAddr addr : new_peers) {
    if (cluster.host(addr).peer().history(guid.to_uint64()).empty()) {
      has_empty_member = true;
    }
  }
  ASSERT_TRUE(has_empty_member);

  // The background maintenance bootstraps the newcomer.
  EXPECT_GE(cluster.migrate_version_history(guid), 1u);
  for (sim::NodeAddr addr : new_peers) {
    EXPECT_EQ(cluster.host(addr).peer().history(guid.to_uint64()).size(),
              2u)
        << "node " << addr;
  }

  // Reads keep working through the reconfiguration.
  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.versions.size(), 2u);

  // A second migration is a no-op.
  EXPECT_EQ(cluster.migrate_version_history(guid), 0u);
}

TEST(ClusterMembership, MigrationWithNothingToDoIsZero) {
  AsaCluster cluster(small_cluster(19));
  EXPECT_EQ(cluster.migrate_version_history(Guid::named("never-written")),
            0u);
}

// ---- Crash + reconfiguration. ----

TEST(ClusterChurn, SurvivesNodeCrashForNewOperations) {
  ClusterConfig config = small_cluster(13);
  config.nodes = 16;
  AsaCluster cluster(config);
  // Store before the crash.
  StoreResult stored;
  const Pid pid = cluster.data_store().store(
      block_from("pre-crash"), [&](const StoreResult& r) { stored = r; });
  cluster.run();
  ASSERT_TRUE(stored.ok);

  // Crash a node that is NOT in this block's replica set, then verify both
  // old and new operations work.
  const auto keys = replica_keys(pid.as_key(), 4);
  std::set<sim::NodeAddr> replica_addrs;
  for (const auto& k : keys) replica_addrs.insert(cluster.addr_for_key(k));
  std::size_t victim = 0;
  while (replica_addrs.contains(
      cluster.host(victim).address())) {
    ++victim;
  }
  cluster.crash_node(victim);

  RetrieveResult got;
  cluster.data_store().retrieve(pid, [&](const RetrieveResult& r) { got = r; });
  cluster.run();
  EXPECT_TRUE(got.ok);

  StoreResult stored2;
  cluster.data_store().store(block_from("post-crash"),
                             [&](const StoreResult& r) { stored2 = r; });
  cluster.run();
  EXPECT_TRUE(stored2.ok);
}

// ---- Crash -> restart -> recovery (paper 2.2's faulty-member repair). ----

TEST(ClusterRecovery, RestartedNodeRejoinsAndAdoptsHistory) {
  ClusterConfig config = small_cluster(23);
  config.nodes = 16;
  AsaCluster cluster(config);
  const Guid guid = Guid::named("recovering-history");

  int committed = 0;
  for (const char* text : {"v0", "v1", "v2"}) {
    cluster.version_history().append(
        guid, Pid::of(block_from(text)),
        [&](const commit::CommitResult& r) { committed += r.committed; });
    cluster.run();
  }
  ASSERT_EQ(committed, 3);

  // Crash a peer-set member: it leaves the ring and drops its history.
  const auto victim = static_cast<std::size_t>(cluster.peer_set(guid)[0]);
  cluster.crash_node(victim);
  ASSERT_TRUE(cluster.crashed(victim));

  // Restart: the node re-attaches under its original ring id and
  // bootstraps the (f+1)-agreed history from the surviving members.
  EXPECT_GE(cluster.restart_node(victim), 1u);
  EXPECT_FALSE(cluster.crashed(victim));
  EXPECT_EQ(cluster.host(victim).peer().history(guid.to_uint64()).size(),
            3u);
  // Back in the ring under the old id: the peer set includes it again.
  const auto peers = cluster.peer_set(guid);
  EXPECT_NE(std::find(peers.begin(), peers.end(),
                      static_cast<sim::NodeAddr>(victim)),
            peers.end());

  // Restarting a live node is a no-op.
  EXPECT_EQ(cluster.restart_node(victim), 0u);

  // Subsequent commits land on the restarted node too.
  int committed2 = 0;
  cluster.version_history().append(
      guid, Pid::of(block_from("v3")),
      [&](const commit::CommitResult& r) { committed2 += r.committed; });
  cluster.run();
  ASSERT_EQ(committed2, 1);
  EXPECT_EQ(cluster.host(victim).peer().history(guid.to_uint64()).size(),
            4u);

  // Reads agree on the full four-version history.
  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.versions.size(), 4u);
}

TEST(ClusterRecovery, RepairAfterSimultaneousCorruptionAndCrash) {
  ClusterConfig config = small_cluster(29);
  config.nodes = 16;
  AsaCluster cluster(config);

  StoreResult stored;
  const Pid pid = cluster.data_store().store(
      block_from("battered block"), [&](const StoreResult& r) { stored = r; });
  cluster.run();
  ASSERT_TRUE(stored.ok);
  cluster.maintainer().track(pid);

  // Hit the replica set twice at once (f = 1 each for the storage layer's
  // corruption detection and the ring's crash healing): corrupt one
  // replica at rest and crash another.
  const auto keys = replica_keys(pid.as_key(), 4);
  const auto corrupted = static_cast<std::size_t>(
      cluster.addr_for_key(keys[0]));
  std::size_t crashed = cluster.node_count();
  for (const auto& k : keys) {
    const auto addr = static_cast<std::size_t>(cluster.addr_for_key(k));
    if (addr != corrupted) {
      crashed = addr;
      break;
    }
  }
  ASSERT_LT(crashed, cluster.node_count());
  cluster.host(corrupted).store().corrupt_stored(pid);
  cluster.crash_node(crashed);

  // Maintenance re-replicates onto the healed ring and fixes the damaged
  // copy from an intact one.
  EXPECT_GE(cluster.maintainer().scan(), 1u);
  cluster.run();

  RetrieveResult got;
  cluster.data_store().retrieve(pid, [&](const RetrieveResult& r) { got = r; });
  cluster.run();
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.block, block_from("battered block"));

  // The restarted node is folded back in and repaired as well.
  cluster.restart_node(crashed);
  EXPECT_GE(cluster.maintainer().scan(), 0u);
  RetrieveResult again;
  cluster.data_store().retrieve(pid,
                                [&](const RetrieveResult& r) { again = r; });
  cluster.run();
  EXPECT_TRUE(again.ok);
}

// ---- Membership churn: true ring joins and departures (not crashes). ----

TEST(ClusterChurn, AddNodeGrowsRingAndBumpsEpoch) {
  AsaCluster cluster(small_cluster(51));
  const std::size_t before = cluster.node_count();
  EXPECT_EQ(cluster.membership_epoch(), 0u);
  const std::size_t fresh = cluster.add_node();
  EXPECT_EQ(fresh, before);  // Indices are never reused.
  EXPECT_EQ(cluster.node_count(), before + 1);
  EXPECT_EQ(cluster.membership_epoch(), 1u);
  EXPECT_EQ(cluster.joined_epoch(fresh), 1u);
  EXPECT_EQ(cluster.joined_epoch(0), 0u);  // Initial members: epoch 0.
  EXPECT_FALSE(cluster.departed(fresh));

  // The grown ring still commits and reads.
  const Guid guid = Guid::named("post-join");
  int committed = 0;
  cluster.version_history().append(
      guid, Pid::of(block_from("after the join")),
      [&](const commit::CommitResult& r) { committed += r.committed; });
  cluster.run();
  EXPECT_EQ(committed, 1);
}

TEST(ClusterChurn, GracefulLeaveWaveHandsHistoryToNewOwners) {
  ClusterConfig config = small_cluster(53);
  config.nodes = 16;
  AsaCluster cluster(config);
  const Guid guid = Guid::named("handed-off");

  for (int i = 0; i < 3; ++i) {
    int committed = 0;
    cluster.version_history().append(
        guid, Pid::of(block_from("survivor " + std::to_string(i))),
        [&](const commit::CommitResult& r) { committed += r.committed; });
    cluster.run();
    ASSERT_EQ(committed, 1) << "baseline update " << i;
  }

  // Remove every original peer-set member, one graceful leave at a time.
  // Each leave hands the key range (and the history) to the new owners.
  const auto original = cluster.peer_set(guid);
  ASSERT_EQ(original.size(), 4u);
  for (sim::NodeAddr member : original) {
    ASSERT_TRUE(cluster.remove_node(static_cast<std::size_t>(member),
                                    /*graceful=*/true));
    EXPECT_TRUE(cluster.departed(static_cast<std::size_t>(member)));
    EXPECT_TRUE(
        cluster.departed_gracefully(static_cast<std::size_t>(member)));
    cluster.run();
  }
  EXPECT_EQ(cluster.membership_epoch(), 4u);

  // The peer set fully rotated, and the acknowledged history survived
  // into it.
  for (sim::NodeAddr member : cluster.peer_set(guid)) {
    EXPECT_EQ(std::count(original.begin(), original.end(), member), 0);
  }
  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.versions.size(), 3u);
}

TEST(ClusterChurn, SuppressedHandoffLosesTheHistory) {
  // The counterfactual behind asachaos --churn-smoke --no-handoff: the
  // same graceful leave wave, minus the data handoff, must lose the
  // acknowledged history once every original owner is gone.
  ClusterConfig config = small_cluster(53);
  config.nodes = 16;
  AsaCluster cluster(config);
  const Guid guid = Guid::named("handed-off");  // Same ring layout above.
  int committed = 0;
  cluster.version_history().append(
      guid, Pid::of(block_from("doomed update")),
      [&](const commit::CommitResult& r) { committed += r.committed; });
  cluster.run();
  ASSERT_EQ(committed, 1);

  for (sim::NodeAddr member : cluster.peer_set(guid)) {
    ASSERT_TRUE(cluster.remove_node(static_cast<std::size_t>(member),
                                    /*graceful=*/true, /*handoff=*/false));
    cluster.run();
  }
  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.versions.empty())
      << "history survived without handoff - the counterfactual is broken";
}

TEST(ClusterChurn, AbruptDepartureIsHealedByMigration) {
  ClusterConfig config = small_cluster(59);
  config.nodes = 16;
  AsaCluster cluster(config);
  const Guid guid = Guid::named("abrupt");
  int committed = 0;
  cluster.version_history().append(
      guid, Pid::of(block_from("replicated widely")),
      [&](const commit::CommitResult& r) { committed += r.committed; });
  cluster.run();
  ASSERT_EQ(committed, 1);

  // One member vanishes without handoff; the other r-1 replicas still
  // hold the history, and migration bootstraps the replacement member.
  const auto members = cluster.peer_set(guid);
  ASSERT_TRUE(cluster.remove_node(static_cast<std::size_t>(members[0]),
                                  /*graceful=*/false));
  EXPECT_FALSE(
      cluster.departed_gracefully(static_cast<std::size_t>(members[0])));
  cluster.run();
  (void)cluster.migrate_version_history(guid);
  cluster.run();

  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.versions.size(), 1u);
}

TEST(ClusterChurn, RemoveNodeGuardsInvalidAndDeparted) {
  AsaCluster cluster(small_cluster(61));
  EXPECT_FALSE(cluster.remove_node(cluster.node_count(), true));
  ASSERT_TRUE(cluster.remove_node(2, /*graceful=*/true));
  EXPECT_FALSE(cluster.remove_node(2, true));   // Already gone.
  EXPECT_FALSE(cluster.remove_node(2, false));  // Still gone.
  EXPECT_EQ(cluster.membership_epoch(), 1u);    // Refused calls don't bump.
  // A departed member never restarts.
  EXPECT_EQ(cluster.restart_node(2), 0u);
  EXPECT_TRUE(cluster.departed(2));
}

}  // namespace
}  // namespace asa_repro::storage
