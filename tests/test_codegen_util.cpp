// CodeBuffer (the paper's Fig 18 generation utilities) and identifier
// mangling helpers.
#include <gtest/gtest.h>

#include "core/codegen.hpp"

namespace asa_repro::fsm {
namespace {

TEST(CodeBuffer, AddAndAddLn) {
  CodeBuffer b;
  b.add("int ", "x");
  b.add_ln(" = ", "1;");
  EXPECT_EQ(b.str(), "int x = 1;\n");
}

TEST(CodeBuffer, BlocksIndent) {
  CodeBuffer b;
  b.add_ln("void f() ");
  b.enter_block();
  b.add_ln("g();");
  b.exit_block();
  EXPECT_EQ(b.str(), "void f() \n{\n    g();\n}\n");
}

TEST(CodeBuffer, NestedBlocks) {
  CodeBuffer b;
  b.enter_block();
  b.enter_block();
  b.add_ln("x;");
  b.exit_block();
  b.exit_block();
  EXPECT_EQ(b.str(), "{\n    {\n        x;\n    }\n}\n");
}

TEST(CodeBuffer, ExitBlockSuffix) {
  CodeBuffer b;
  b.add_ln("enum E ");
  b.enter_block();
  b.add_ln("A,");
  b.exit_block(";");
  EXPECT_EQ(b.str(), "enum E \n{\n    A,\n};\n");
}

TEST(CodeBuffer, ResetIndent) {
  CodeBuffer b;
  b.increase_indent();
  b.increase_indent();
  EXPECT_EQ(b.indent_level(), 2);
  b.reset_indent();
  EXPECT_EQ(b.indent_level(), 0);
  b.add_ln("flush_left;");
  EXPECT_EQ(b.str(), "flush_left;\n");
}

TEST(CodeBuffer, DecreaseClampsAtZero) {
  CodeBuffer b;
  b.decrease_indent();
  b.decrease_indent();
  EXPECT_EQ(b.indent_level(), 0);
}

TEST(CodeBuffer, IndentOnlyAppliedAtLineStart) {
  CodeBuffer b;
  b.increase_indent();
  b.add("a");
  b.add("b");       // Same line: no extra indent.
  b.add_ln("c");
  EXPECT_EQ(b.str(), "    abc\n");
}

TEST(CodeBuffer, BlankLineCarriesNoIndent) {
  CodeBuffer b;
  b.increase_indent();
  b.add_ln("x;");
  b.blank_line();
  b.add_ln("y;");
  EXPECT_EQ(b.str(), "    x;\n\n    y;\n");
}

TEST(CodeBuffer, CustomIndentUnit) {
  CodeBuffer b("\t");
  b.enter_block();
  b.add_ln("x;");
  b.exit_block();
  EXPECT_EQ(b.str(), "{\n\tx;\n}\n");
}

TEST(CodeBuffer, TakeMovesContents) {
  CodeBuffer b;
  b.add_ln("x");
  EXPECT_EQ(b.take(), "x\n");
}

TEST(CamelCase, MessageAndActionNames) {
  // Fig 16 naming: receiveVote / sendCommit / sendNotFree.
  EXPECT_EQ(to_camel_case("vote"), "Vote");
  EXPECT_EQ(to_camel_case("not_free"), "NotFree");
  EXPECT_EQ(to_camel_case("update"), "Update");
  EXPECT_EQ(to_camel_case("already_camel"), "AlreadyCamel");
  EXPECT_EQ(to_camel_case("a-b c"), "ABC");
  EXPECT_EQ(to_camel_case(""), "");
}

TEST(ToIdentifier, StateNames) {
  EXPECT_EQ(to_identifier("T/2/F/0/F/F/F"), "T_2_F_0_F_F_F");
  EXPECT_EQ(to_identifier("T-2-F-0-F-F-F"), "T_2_F_0_F_F_F");
  EXPECT_EQ(to_identifier("IDLE_FREE"), "IDLE_FREE");
}

TEST(ToIdentifier, LeadingDigitPrefixed) {
  EXPECT_EQ(to_identifier("2/1/0"), "_2_1_0");
}

}  // namespace
}  // namespace asa_repro::fsm
