// Durable node state: CRC-framed journal encoding/scanning, the fault-
// injectable storage medium, the write-ahead DurableLog (snapshots, sync
// watermark, recovery), and cluster-level crash-consistency — including
// the full-peer-set crash the volatile seed codebase provably loses.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "durable/crc32.hpp"
#include "durable/durable_log.hpp"
#include "durable/journal.hpp"
#include "durable/storage_medium.hpp"
#include "storage/chaos.hpp"
#include "storage/cluster.hpp"
#include "storage/invariant_checker.hpp"

namespace asa_repro {
namespace {

using durable::DurableLog;
using durable::Entry;
using durable::MemMedium;
using durable::RecordType;
using durable::RecoveryStats;
using durable::ScanResult;

// ---- CRC-32. ----

TEST(Crc32, MatchesKnownVectors) {
  // The standard zlib/IEEE 802.3 check value.
  EXPECT_EQ(durable::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(durable::crc32(""), 0u);
  EXPECT_NE(durable::crc32("a"), durable::crc32("b"));
}

// ---- Frame encode / scan. ----

TEST(Journal, FrameRoundTrips) {
  const std::string frame =
      durable::encode_frame(RecordType::kCommit, "payload bytes");
  EXPECT_EQ(frame.size(), durable::kFrameHeaderSize + 13);
  const ScanResult scan = durable::scan_journal(frame);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, RecordType::kCommit);
  EXPECT_EQ(scan.records[0].payload, "payload bytes");
  EXPECT_EQ(scan.skipped_crc, 0u);
  EXPECT_EQ(scan.truncated_bytes, 0u);
  EXPECT_EQ(scan.valid_size, frame.size());
}

TEST(Journal, TornTailIsTruncatedNotApplied) {
  std::string bytes = durable::encode_frame(RecordType::kCommit, "one");
  bytes += durable::encode_frame(RecordType::kImport, "two");
  const std::size_t valid = bytes.size();
  const std::string third = durable::encode_frame(RecordType::kCommit, "3!");
  bytes += third.substr(0, third.size() / 2);  // The power went out here.

  const ScanResult scan = durable::scan_journal(bytes);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].payload, "two");
  EXPECT_EQ(scan.valid_size, valid);
  EXPECT_EQ(scan.truncated_bytes, bytes.size() - valid);
  EXPECT_EQ(scan.skipped_crc, 0u);
}

TEST(Journal, PayloadBitRotSkipsExactlyThatRecord) {
  std::string bytes = durable::encode_frame(RecordType::kCommit, "first");
  const std::size_t rot_at = bytes.size() + durable::kFrameHeaderSize;
  bytes += durable::encode_frame(RecordType::kCommit, "second");
  bytes += durable::encode_frame(RecordType::kCommit, "third");
  bytes[rot_at] = static_cast<char>(bytes[rot_at] ^ 0x01);

  const ScanResult scan = durable::scan_journal(bytes);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].payload, "first");
  EXPECT_EQ(scan.records[1].payload, "third");
  EXPECT_EQ(scan.skipped_crc, 1u);
  EXPECT_EQ(scan.truncated_bytes, 0u);
  EXPECT_EQ(scan.valid_size, bytes.size());
}

TEST(Journal, HeaderBitRotResynchronisesToLaterRecords) {
  // A rotten HEADER byte must not truncate the rest of the journal: the
  // scanner resynchronises on the next valid header (its CRC makes a
  // false match vanishingly unlikely) and later records survive.
  std::string bytes = durable::encode_frame(RecordType::kCommit, "first");
  const std::size_t rot_at = bytes.size();  // Magic byte of frame 2.
  bytes += durable::encode_frame(RecordType::kCommit, "second");
  bytes += durable::encode_frame(RecordType::kCommit, "third");
  bytes[rot_at] = static_cast<char>(bytes[rot_at] ^ 0x20);

  const ScanResult scan = durable::scan_journal(bytes);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].payload, "first");
  EXPECT_EQ(scan.records[1].payload, "third");
  EXPECT_EQ(scan.skipped_crc, 1u);  // The gap counts once.
  EXPECT_EQ(scan.truncated_bytes, 0u);
  EXPECT_EQ(scan.valid_size, bytes.size());
}

TEST(Journal, GarbageScansToNothing) {
  const std::string garbage = "this is not a journal at all, honest";
  const ScanResult scan = durable::scan_journal(garbage);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.truncated_bytes, garbage.size());
  EXPECT_EQ(scan.valid_size, 0u);
}

// ---- MemMedium fault injection. ----

TEST(MemMedium, TornWriteIsOneShotAndPersistsAPrefix) {
  MemMedium medium;
  medium.arm_torn_write();
  EXPECT_FALSE(medium.append("f", "0123456789"));
  EXPECT_EQ(medium.read("f"), "01234");  // Half the bytes made it.
  EXPECT_EQ(medium.stats().torn_writes, 1u);
  EXPECT_TRUE(medium.append("f", "rest"));  // One-shot: healed.
}

TEST(MemMedium, StallRefusesEveryWrite) {
  MemMedium medium;
  ASSERT_TRUE(medium.append("f", "abc"));
  medium.set_stalled(true);
  EXPECT_FALSE(medium.append("f", "x"));
  EXPECT_FALSE(medium.replace("f", "y"));
  EXPECT_FALSE(medium.truncate("f", 1));
  EXPECT_EQ(medium.read("f"), "abc");  // Untouched.
  EXPECT_GE(medium.stats().refused_stall, 3u);
  medium.set_stalled(false);
  EXPECT_TRUE(medium.append("f", "x"));
}

TEST(MemMedium, CapacityRefusesWholeWrites) {
  MemMedium medium;
  ASSERT_TRUE(medium.append("f", "abcd"));
  medium.set_capacity(6);
  EXPECT_FALSE(medium.append("f", "toolong"));  // Refused whole, not torn.
  EXPECT_EQ(medium.read("f"), "abcd");
  EXPECT_TRUE(medium.append("f", "xy"));  // Exactly fits.
  medium.set_capacity(std::nullopt);
  EXPECT_TRUE(medium.append("f", "and much more besides"));
}

TEST(MemMedium, CorruptByteFlipsOneByteInPlace) {
  MemMedium medium;
  ASSERT_TRUE(medium.append("f", "abcdef"));
  const auto offset = medium.corrupt_byte("f", 9);  // 9 % 6 == 3.
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(*offset, 3u);
  EXPECT_EQ(medium.read("f"), "abcDef");
  EXPECT_FALSE(medium.corrupt_byte("missing", 0).has_value());
}

// ---- DurableLog: write-ahead discipline and recovery. ----

TEST(DurableLog, CommitsRecoverAcrossReopen) {
  MemMedium medium;
  {
    DurableLog log(medium, "node", /*snapshot_every=*/0);
    EXPECT_TRUE(log.record_commit(7, 100, 1000, 11));
    EXPECT_TRUE(log.record_commit(7, 101, 1001, 22));
    EXPECT_TRUE(log.record_commit(9, 102, 1002, 33));
    EXPECT_TRUE(log.record_membership(false, 4));
  }
  DurableLog reopened(medium, "node", 0);
  const RecoveryStats stats = reopened.recover();
  EXPECT_EQ(stats.replayed_records, 4u);
  EXPECT_EQ(stats.membership_records, 1u);
  EXPECT_EQ(stats.entries_recovered, 3u);
  EXPECT_EQ(stats.skipped_crc, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  ASSERT_EQ(reopened.histories().at(7).size(), 2u);
  EXPECT_EQ(reopened.histories().at(7)[1].payload, 22u);
  ASSERT_EQ(reopened.histories().at(9).size(), 1u);
}

TEST(DurableLog, DuplicateCommitIsIdempotent) {
  MemMedium medium;
  DurableLog log(medium, "node", 0);
  EXPECT_TRUE(log.record_commit(7, 100, 1000, 11));
  EXPECT_TRUE(log.record_commit(7, 100, 1000, 11));  // Already durable.
  EXPECT_EQ(log.histories().at(7).size(), 1u);
  EXPECT_EQ(log.writer_stats().commits_recorded, 1u);
}

TEST(DurableLog, TornAppendVetoesAndWriterRepairsTheTail) {
  MemMedium medium;
  DurableLog log(medium, "node", 0);
  ASSERT_TRUE(log.record_commit(7, 100, 1000, 11));
  const std::size_t good = log.journal_size();

  medium.arm_torn_write();
  EXPECT_FALSE(log.record_commit(7, 101, 1001, 22));  // MUST NOT be acked.
  EXPECT_EQ(log.writer_stats().append_failures, 1u);
  EXPECT_FALSE(log.histories().at(7).size() == 2u);
  EXPECT_GT(log.journal_size(), good);  // The torn prefix is on the medium.

  // The next append first truncates back to the known-good size.
  EXPECT_TRUE(log.record_commit(7, 102, 1002, 33));
  EXPECT_EQ(log.writer_stats().tail_repairs, 1u);

  DurableLog reopened(medium, "node", 0);
  const RecoveryStats stats = reopened.recover();
  EXPECT_EQ(stats.entries_recovered, 2u);  // 11 and 33; 22 never durable.
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST(DurableLog, StalledAndFullDisksRefuseCommits) {
  MemMedium medium;
  DurableLog log(medium, "node", 0);
  medium.set_stalled(true);
  EXPECT_FALSE(log.record_commit(7, 100, 1000, 11));
  medium.set_stalled(false);
  medium.set_capacity(medium.used() + 3);  // Not even a header fits.
  EXPECT_FALSE(log.record_commit(7, 100, 1000, 11));
  medium.set_capacity(std::nullopt);
  EXPECT_TRUE(log.record_commit(7, 100, 1000, 11));
  EXPECT_EQ(log.writer_stats().append_failures, 2u);
}

TEST(DurableLog, SnapshotRollsTheJournalAndRecovers) {
  MemMedium medium;
  DurableLog log(medium, "node", /*snapshot_every=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.record_commit(7, 100 + i, 1000 + i, 11 * (i + 1)));
  }
  EXPECT_EQ(log.writer_stats().snapshots_written, 2u);
  EXPECT_GT(medium.size(log.snapshot_file()), 0u);
  // Only the commit past the last snapshot is still in the journal.
  EXPECT_EQ(log.journal_size(),
            durable::kFrameHeaderSize + 4 * 8);

  DurableLog reopened(medium, "node", 2);
  const RecoveryStats stats = reopened.recover();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_FALSE(stats.snapshot_corrupt);
  EXPECT_EQ(stats.entries_recovered, 5u);
  ASSERT_EQ(reopened.histories().at(7).size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reopened.histories().at(7)[i].payload, 11 * (i + 1));
  }
}

TEST(DurableLog, CorruptSnapshotIsFlaggedAndJournalStillReplays) {
  MemMedium medium;
  {
    DurableLog log(medium, "node", 2);
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(log.record_commit(7, 100 + i, 1000 + i, i));
    }
  }
  DurableLog reopened(medium, "node", 2);
  // Rot the snapshot's first frame header: its records are lost, the
  // journal's post-snapshot commit still replays.
  medium.corrupt_byte(reopened.snapshot_file(), 0);
  const RecoveryStats stats = reopened.recover();
  EXPECT_TRUE(stats.snapshot_corrupt);
  EXPECT_EQ(stats.entries_recovered, 1u);  // The journal's commit #3.
}

TEST(DurableLog, DropUnsyncedTailNeverCutsAcknowledgedCommits) {
  MemMedium medium;
  DurableLog log(medium, "node", 0);
  ASSERT_TRUE(log.record_commit(7, 100, 1000, 11));  // Acked => synced.
  ASSERT_TRUE(log.record_import(9, {{200, 2000, 5}, {201, 2001, 6}}));
  ASSERT_TRUE(log.record_membership(false, 3));

  // Partial flush loses the whole unsynced tail but nothing acked.
  EXPECT_EQ(log.drop_unsynced_tail(100), 2u);
  EXPECT_EQ(log.drop_unsynced_tail(100), 0u);  // Idempotent.

  DurableLog reopened(medium, "node", 0);
  const RecoveryStats stats = reopened.recover();
  EXPECT_EQ(stats.entries_recovered, 1u);
  EXPECT_EQ(reopened.histories().at(7).size(), 1u);
  EXPECT_FALSE(reopened.histories().contains(9));
}

TEST(DurableLog, CommitAdvancesWatermarkPastEarlierImports) {
  MemMedium medium;
  DurableLog log(medium, "node", 0);
  ASSERT_TRUE(log.record_import(9, {{200, 2000, 5}}));
  ASSERT_TRUE(log.record_commit(7, 100, 1000, 11));
  // The commit moved the sync watermark past the import record.
  EXPECT_EQ(log.drop_unsynced_tail(100), 0u);
}

TEST(DurableLog, ImportReplayReplacesNotMerges) {
  MemMedium medium;
  DurableLog log(medium, "node", 0);
  ASSERT_TRUE(log.record_commit(7, 100, 1000, 11));
  ASSERT_TRUE(log.record_commit(7, 101, 1001, 22));
  // Reconciliation reordered the history; the import is authoritative.
  ASSERT_TRUE(log.record_import(7, {{101, 1001, 22}, {100, 1000, 11}}));

  DurableLog reopened(medium, "node", 0);
  (void)reopened.recover();
  ASSERT_EQ(reopened.histories().at(7).size(), 2u);
  EXPECT_EQ(reopened.histories().at(7)[0].payload, 22u);
  EXPECT_EQ(reopened.histories().at(7)[1].payload, 11u);
}

// ---- Cluster-level crash consistency. ----

namespace cluster_tests {

using storage::AsaCluster;
using storage::ClusterConfig;
using storage::Guid;
using storage::HistoryReadResult;
using storage::InvariantChecker;
using storage::Pid;
using storage::Violation;
using storage::block_from;

ClusterConfig durable_cluster(std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = 16;
  config.replication_factor = 4;
  config.seed = seed;
  config.durability = true;
  config.snapshot_every = 3;
  return config;
}

/// First GUID whose peer set has `want` distinct members.
Guid full_peer_set_guid(AsaCluster& cluster, std::size_t want,
                        const std::string& stem) {
  for (int probe = 0; probe < 64; ++probe) {
    const Guid guid = Guid::named(stem + ":" + std::to_string(probe));
    if (cluster.peer_set(guid).size() >= want) return guid;
  }
  return Guid::named(stem);
}

int commit_n(AsaCluster& cluster, const Guid& guid, int n, int base = 0) {
  int committed = 0;
  for (int i = 0; i < n; ++i) {
    cluster.version_history().append(
        guid,
        Pid::of(block_from("durable v" + std::to_string(base + i))),
        [&committed](const commit::CommitResult& r) {
          committed += r.committed;
        });
    cluster.run();
  }
  return committed;
}

TEST(ClusterDurability, FullPeerSetCrashReplaysAcknowledgedHistory) {
  // The > f demonstration: every peer-set member crashes, so no live node
  // holds the history; with durable journals the acknowledged commits
  // come back anyway. (The volatile counterfactual below loses them.)
  AsaCluster cluster(durable_cluster(91));
  const Guid guid = full_peer_set_guid(cluster, 4, "all-crash");
  ASSERT_EQ(commit_n(cluster, guid, 4), 4);

  const std::vector<sim::NodeAddr> members = cluster.peer_set(guid);
  for (sim::NodeAddr addr : members) {
    cluster.crash_node(static_cast<std::size_t>(addr));
  }
  for (sim::NodeAddr addr : members) {
    EXPECT_GE(cluster.restart_node(static_cast<std::size_t>(addr)), 1u);
  }
  cluster.run();
  for (sim::NodeAddr addr : members) {
    EXPECT_EQ(cluster.host(static_cast<std::size_t>(addr))
                  .peer()
                  .history(guid.to_uint64())
                  .size(),
              4u)
        << "member " << addr;
  }
  HistoryReadResult read;
  cluster.version_history().read(
      guid, [&read](const HistoryReadResult& r) { read = r; });
  cluster.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.versions.size(), 4u);
}

TEST(ClusterDurability, VolatileClusterLosesHistoryOnFullSetCrash) {
  // The seed codebase's behaviour, kept reachable for comparison.
  ClusterConfig config = durable_cluster(91);
  config.durability = false;
  AsaCluster cluster(config);
  const Guid guid = full_peer_set_guid(cluster, 4, "all-crash");
  ASSERT_EQ(commit_n(cluster, guid, 4), 4);

  const std::vector<sim::NodeAddr> members = cluster.peer_set(guid);
  for (sim::NodeAddr addr : members) {
    cluster.crash_node(static_cast<std::size_t>(addr));
  }
  for (sim::NodeAddr addr : members) {
    cluster.restart_node(static_cast<std::size_t>(addr));
  }
  cluster.run();
  std::size_t surviving = 0;
  for (sim::NodeAddr addr : members) {
    surviving += cluster.host(static_cast<std::size_t>(addr))
                     .peer()
                     .history(guid.to_uint64())
                     .size();
  }
  EXPECT_EQ(surviving, 0u);
}

TEST(ClusterDurability, RepeatedCrashRecoveryCyclesAreIdempotent) {
  AsaCluster cluster(durable_cluster(17));
  const Guid guid = full_peer_set_guid(cluster, 4, "cycles");
  ASSERT_EQ(commit_n(cluster, guid, 3), 3);
  const auto victim =
      static_cast<std::size_t>(cluster.peer_set(guid)[0]);

  for (int cycle = 0; cycle < 3; ++cycle) {
    cluster.crash_node(victim);
    EXPECT_GE(cluster.restart_node(victim), 1u) << "cycle " << cycle;
    cluster.run();
    const auto& history = cluster.host(victim).peer().history(guid.to_uint64());
    ASSERT_EQ(history.size(), 3u) << "cycle " << cycle;
    std::set<std::uint64_t> requests;
    for (const auto& e : history) requests.insert(e.request_id);
    EXPECT_EQ(requests.size(), 3u) << "no duplicates, cycle " << cycle;
  }
  // The cluster still takes commits afterwards, and the recovered member
  // records them.
  ASSERT_EQ(commit_n(cluster, guid, 1, /*base=*/100), 1);
  EXPECT_EQ(cluster.host(victim).peer().history(guid.to_uint64()).size(),
            4u);
  InvariantChecker checker(cluster);
  EXPECT_TRUE(checker.check(/*check_order=*/true).empty());
}

TEST(ClusterDurability, LostJournalFallsBackToPeerBootstrap) {
  AsaCluster cluster(durable_cluster(29));
  const Guid guid = full_peer_set_guid(cluster, 4, "lost-journal");
  ASSERT_EQ(commit_n(cluster, guid, 3), 3);
  const auto victim =
      static_cast<std::size_t>(cluster.peer_set(guid)[0]);

  cluster.crash_node(victim);
  // Act of god: journal AND snapshot gone. Recovery must degrade to the
  // seed behaviour — a pure (f+1) bootstrap from the surviving members.
  cluster.medium(victim).erase(cluster.durable_log(victim)->journal_file());
  cluster.medium(victim).erase(cluster.durable_log(victim)->snapshot_file());
  EXPECT_GE(cluster.restart_node(victim), 1u);
  cluster.run();
  EXPECT_EQ(cluster.last_recovery(victim).entries_recovered, 0u);
  EXPECT_EQ(cluster.host(victim).peer().history(guid.to_uint64()).size(),
            3u);
  InvariantChecker checker(cluster);
  EXPECT_TRUE(checker.check(/*check_order=*/true).empty());
}

TEST(ClusterDurability, DurableAckInvariantDetectsLostAcknowledgements) {
  // Manufacture the loss durability exists to prevent: every member's
  // journal is wiped while all are down, so acknowledged commits cannot
  // be recovered from anywhere — the durable-ack invariant must say so.
  AsaCluster cluster(durable_cluster(43));
  const Guid guid = full_peer_set_guid(cluster, 4, "ack-loss");
  ASSERT_EQ(commit_n(cluster, guid, 2), 2);

  const std::vector<sim::NodeAddr> members = cluster.peer_set(guid);
  for (sim::NodeAddr addr : members) {
    cluster.crash_node(static_cast<std::size_t>(addr));
  }
  for (sim::NodeAddr addr : members) {
    const auto index = static_cast<std::size_t>(addr);
    cluster.medium(index).erase(cluster.durable_log(index)->journal_file());
    cluster.medium(index).erase(cluster.durable_log(index)->snapshot_file());
  }
  for (sim::NodeAddr addr : members) {
    cluster.restart_node(static_cast<std::size_t>(addr));
  }
  cluster.run();

  InvariantChecker checker(cluster);
  const std::vector<Violation> violations = checker.check(true);
  EXPECT_FALSE(violations.empty());
  EXPECT_TRUE(std::any_of(violations.begin(), violations.end(),
                          [](const Violation& v) {
                            return v.invariant == "durable-ack";
                          }))
      << "expected a durable-ack violation";
}

TEST(ClusterDurability, SmokeIsCleanAndDeterministic) {
  const storage::DurabilitySmokeReport report =
      storage::run_durability_smoke(1);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures.front());
  EXPECT_FALSE(report.notes.empty());
}

}  // namespace cluster_tests

}  // namespace
}  // namespace asa_repro
