// Artefact renderers: the Fig 14 text format, DOT and XML diagrams, and
// markdown documentation.
#include <gtest/gtest.h>

#include "commit/commit_model.hpp"
#include "core/render/doc_renderer.hpp"
#include "core/render/dot_renderer.hpp"
#include "core/render/mermaid_renderer.hpp"
#include "core/render/text_renderer.hpp"
#include "core/render/xml_renderer.hpp"

namespace asa_repro::fsm {
namespace {

class Renderers : public ::testing::Test {
 protected:
  Renderers()
      : model_(4), machine_(model_.generate_state_machine()) {}
  commit::CommitModel model_;
  StateMachine machine_;
};

// ---- TextRenderer (Fig 14). ----

TEST_F(Renderers, TextRenderingOfFig14State) {
  const auto id = machine_.state_id("T/2/F/0/F/F/F");
  ASSERT_TRUE(id.has_value());
  const std::string text = TextRenderer().render_state(machine_, *id);

  // Header and underline.
  EXPECT_NE(text.find("state: T/2/F/0/F/F/F\n"), std::string::npos);
  EXPECT_NE(text.find("--------------------\n"), std::string::npos);
  // Generated commentary (Fig 14's description block).
  EXPECT_NE(text.find("Have received initial update from client."),
            std::string::npos);
  EXPECT_NE(text.find("Waiting for 1 further vote (including local vote if "
                      "any) before sending commit."),
            std::string::npos);
  // Transitions in Fig 14's notation.
  EXPECT_NE(text.find(" message: VOTE\n"), std::string::npos);
  EXPECT_NE(text.find("  action: ->vote\n"), std::string::npos);
  EXPECT_NE(text.find("  action: ->commit\n"), std::string::npos);
  EXPECT_NE(text.find("  transition to: T/3/T/0/T/F/F\n"), std::string::npos);
  EXPECT_NE(text.find(" message: COMMIT\n"), std::string::npos);
  EXPECT_NE(text.find("  transition to: T/2/F/1/F/F/F\n"), std::string::npos);
  EXPECT_NE(text.find(" message: FREE\n"), std::string::npos);
  EXPECT_NE(text.find("  action: ->not_free\n"), std::string::npos);
  EXPECT_NE(text.find("  transition to: T/2/T/0/T/T/T\n"), std::string::npos);
}

TEST_F(Renderers, TextRenderingCoversAllStates) {
  const std::string text = TextRenderer().render(machine_);
  for (const State& s : machine_.states()) {
    EXPECT_NE(text.find("state: " + s.name + "\n"), std::string::npos);
  }
}

TEST_F(Renderers, SummaryListsEveryTransition) {
  const std::string summary = TextRenderer().render_summary(machine_);
  EXPECT_NE(summary.find("states: 33"), std::string::npos);
  std::size_t arrows = 0;
  for (std::size_t pos = 0;
       (pos = summary.find("-->", pos)) != std::string::npos; ++pos) {
    ++arrows;
  }
  EXPECT_EQ(arrows, machine_.transition_count());
}

// ---- DotRenderer (Fig 15 / Fig 3). ----

TEST_F(Renderers, DotOutputIsWellFormed) {
  const std::string dot = DotRenderer().render(machine_);
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}\n"), std::string::npos);
  // Start marker present.
  EXPECT_NE(dot.find("__start -> \"F/0/F/0/F/T/F\""), std::string::npos);
  // Finish state is double-bordered.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  // Braces balanced.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST_F(Renderers, DotEdgeLabelsMatchPaperNotation) {
  // The paper's diagrams label transitions "<-vote" (received) and actions
  // "->commit" (sent).
  const std::string dot = DotRenderer().render(machine_);
  EXPECT_NE(dot.find("<-vote"), std::string::npos);
  EXPECT_NE(dot.find("->commit"), std::string::npos);
}

TEST_F(Renderers, DotExcerptRestrictsToGivenStates) {
  // Fig 3 shows a 3-state excerpt.
  const auto a = machine_.state_id("T/2/F/0/F/F/F");
  const auto b = machine_.state_id("T/3/T/0/T/F/F");
  const auto c = machine_.state_id("T/2/F/1/F/F/F");
  ASSERT_TRUE(a && b && c);
  const std::string dot = DotRenderer().render_excerpt(machine_, {*a, *b, *c});
  EXPECT_NE(dot.find("\"T/2/F/0/F/F/F\""), std::string::npos);
  EXPECT_NE(dot.find("\"T/3/T/0/T/F/F\""), std::string::npos);
  // No edges out of the excerpt.
  EXPECT_EQ(dot.find("\"F/0/F/0/F/T/F\""), std::string::npos);
}

TEST_F(Renderers, DotHonoursOptions) {
  DotOptions options;
  options.graph_name = "my graph";
  options.left_to_right = true;
  options.show_actions = false;
  const std::string dot = DotRenderer(options).render(machine_);
  EXPECT_NE(dot.find("digraph \"my graph\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_EQ(dot.find("->commit"), std::string::npos);
}

// ---- XmlRenderer. ----

TEST_F(Renderers, XmlStructure) {
  const std::string xml = XmlRenderer().render(machine_);
  EXPECT_EQ(xml.find("<?xml"), 0u);
  EXPECT_NE(xml.find("<statemachine states=\"33\""), std::string::npos);
  EXPECT_NE(xml.find("start=\"F/0/F/0/F/T/F\""), std::string::npos);
  EXPECT_NE(xml.find("<message name=\"not_free\"/>"), std::string::npos);
  EXPECT_NE(xml.find("</statemachine>"), std::string::npos);
  // One <transition per transition.
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = xml.find("<transition ", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_EQ(count, machine_.transition_count());
}

TEST(XmlEscaping, SpecialCharactersEscaped) {
  StateMachine machine({"a<b"},
                       {State{"s&1", {}, {"say \"hi\""}, false}}, 0, kNoState);
  const std::string xml = XmlRenderer().render(machine);
  EXPECT_NE(xml.find("a&lt;b"), std::string::npos);
  EXPECT_NE(xml.find("s&amp;1"), std::string::npos);
  EXPECT_NE(xml.find("&quot;hi&quot;"), std::string::npos);
  EXPECT_EQ(xml.find("a<b"), std::string::npos);
}

// ---- MermaidRenderer. ----

TEST_F(Renderers, MermaidStructure) {
  const std::string mermaid = MermaidRenderer().render(machine_);
  EXPECT_EQ(mermaid.find("stateDiagram-v2"), 0u);
  // Entry arrow to the start state's alias.
  const auto start_alias = "s" + std::to_string(machine_.start());
  EXPECT_NE(mermaid.find("[*] --> " + start_alias), std::string::npos);
  // Every state declared with its real name as the label.
  for (StateId i = 0; i < machine_.state_count(); ++i) {
    EXPECT_NE(mermaid.find(" : " + machine_.state(i).name + "\n"),
              std::string::npos);
  }
  // Finish state exits to [*]; actions rendered after a slash.
  EXPECT_NE(mermaid.find("--> [*]"), std::string::npos);
  EXPECT_NE(mermaid.find("vote / "), std::string::npos);
}

TEST_F(Renderers, MermaidHonoursLimits) {
  MermaidOptions options;
  options.max_states = 3;
  options.show_actions = false;
  const std::string mermaid = MermaidRenderer(options).render(machine_);
  EXPECT_EQ(mermaid.find("s3 :"), std::string::npos);
  EXPECT_EQ(mermaid.find(" / "), std::string::npos);
}

// ---- DocRenderer. ----

TEST_F(Renderers, DocRendererEmitsMarkdown) {
  DocOptions options;
  options.title = "Commit FSM r=4";
  options.preamble = "Generated from the abstract model.";
  const std::string doc = DocRenderer(options).render(machine_);
  EXPECT_EQ(doc.find("# Commit FSM r=4"), 0u);
  EXPECT_NE(doc.find("- States: 33"), std::string::npos);
  EXPECT_NE(doc.find("## Messages"), std::string::npos);
  EXPECT_NE(doc.find("### `F/0/F/0/F/T/F` *(start)*"), std::string::npos);
  EXPECT_NE(doc.find("| message | actions | next state |"),
            std::string::npos);
  // The finish state section shows no outgoing transitions.
  EXPECT_NE(doc.find("No outgoing transitions."), std::string::npos);
}

}  // namespace
}  // namespace asa_repro::fsm
