// 160-bit ring arithmetic: modular add/subtract, circular intervals,
// power-of-two offsets and evenly spaced ring fractions.
#include <gtest/gtest.h>

#include "p2p/node_id.hpp"
#include "sim/rng.hpp"

namespace asa_repro::p2p {
namespace {

TEST(NodeId, FromUint64RoundTripsThroughHex) {
  const NodeId id = NodeId::from_uint64(0x0123456789ABCDEFull);
  EXPECT_EQ(id.to_hex(),
            "000000000000000000000000" "0123456789abcdef");
}

TEST(NodeId, PlusMinusInverse) {
  sim::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const NodeId a = NodeId::hash_of("a" + std::to_string(i));
    const NodeId b = NodeId::hash_of("b" + std::to_string(i));
    EXPECT_EQ(a.plus(b).minus(b), a);
    EXPECT_EQ(a.minus(b).plus(b), a);
  }
}

TEST(NodeId, PlusWrapsModulo) {
  // max + 1 == 0.
  NodeId::Bytes all_ff;
  all_ff.fill(0xFF);
  const NodeId max(all_ff);
  EXPECT_EQ(max.plus(NodeId::from_uint64(1)), NodeId());
}

TEST(NodeId, MinusWrapsModulo) {
  // 0 - 1 == max.
  NodeId::Bytes all_ff;
  all_ff.fill(0xFF);
  EXPECT_EQ(NodeId().minus(NodeId::from_uint64(1)), NodeId(all_ff));
}

TEST(NodeId, PowerOfTwoLowBits) {
  EXPECT_EQ(NodeId::power_of_two(0), NodeId::from_uint64(1));
  EXPECT_EQ(NodeId::power_of_two(10), NodeId::from_uint64(1024));
  EXPECT_EQ(NodeId::power_of_two(63),
            NodeId::from_uint64(0x8000000000000000ull));
}

TEST(NodeId, PowerOfTwoHighBitsDistinct) {
  for (unsigned i = 0; i < 160; ++i) {
    for (unsigned j = i + 1; j < 160; ++j) {
      EXPECT_NE(NodeId::power_of_two(i), NodeId::power_of_two(j));
    }
  }
}

TEST(NodeId, PowerOfTwoDoubling) {
  for (unsigned i = 0; i + 1 < 160; ++i) {
    const NodeId p = NodeId::power_of_two(i);
    EXPECT_EQ(p.plus(p), NodeId::power_of_two(i + 1)) << "bit " << i;
  }
}

TEST(NodeId, FractionOfRingZeroIsZero) {
  for (std::uint64_t n : {1ull, 4ull, 7ull, 46ull}) {
    EXPECT_EQ(NodeId::fraction_of_ring(0, n), NodeId());
  }
}

TEST(NodeId, FractionOfRingHalf) {
  // 1/2 of the ring = 2^159.
  EXPECT_EQ(NodeId::fraction_of_ring(1, 2), NodeId::power_of_two(159));
  // 2/4 likewise.
  EXPECT_EQ(NodeId::fraction_of_ring(2, 4), NodeId::power_of_two(159));
  // 1/4 = 2^158.
  EXPECT_EQ(NodeId::fraction_of_ring(1, 4), NodeId::power_of_two(158));
}

TEST(NodeId, FractionOfRingEvenSpacing) {
  // Successive fractions differ by floor-or-ceiling of 2^160/n: the gap
  // between consecutive replica keys never varies by more than one ulp.
  for (std::uint64_t n : {3ull, 4ull, 7ull, 13ull, 46ull}) {
    NodeId prev = NodeId::fraction_of_ring(0, n);
    NodeId min_gap, max_gap;
    bool first = true;
    for (std::uint64_t i = 1; i < n; ++i) {
      const NodeId cur = NodeId::fraction_of_ring(i, n);
      const NodeId gap = cur.minus(prev);
      if (first || gap < min_gap) min_gap = gap;
      if (first || max_gap < gap) max_gap = gap;
      first = false;
      prev = cur;
    }
    EXPECT_TRUE(max_gap.minus(min_gap) <= NodeId::from_uint64(1))
        << "n=" << n;
  }
}

TEST(NodeId, FractionOfRingMonotonic) {
  for (std::uint64_t n : {4ull, 7ull, 25ull}) {
    for (std::uint64_t i = 0; i + 1 < n; ++i) {
      EXPECT_TRUE(NodeId::fraction_of_ring(i, n) <
                  NodeId::fraction_of_ring(i + 1, n));
    }
  }
}

TEST(NodeId, IntervalOpenClosedBasic) {
  const NodeId a = NodeId::from_uint64(10);
  const NodeId b = NodeId::from_uint64(20);
  EXPECT_FALSE(NodeId::in_interval_open_closed(NodeId::from_uint64(10), a, b));
  EXPECT_TRUE(NodeId::in_interval_open_closed(NodeId::from_uint64(11), a, b));
  EXPECT_TRUE(NodeId::in_interval_open_closed(NodeId::from_uint64(20), a, b));
  EXPECT_FALSE(NodeId::in_interval_open_closed(NodeId::from_uint64(21), a, b));
}

TEST(NodeId, IntervalWrapsAroundZero) {
  // Construct a wrap: hi > lo on the number line, interval crosses zero.
  const NodeId hi = NodeId::from_uint64(0).minus(NodeId::from_uint64(5));
  const NodeId lo = NodeId::from_uint64(5);
  EXPECT_TRUE(NodeId::in_interval_open_closed(NodeId::from_uint64(0), hi, lo));
  EXPECT_TRUE(NodeId::in_interval_open_closed(NodeId::from_uint64(5), hi, lo));
  EXPECT_TRUE(NodeId::in_interval_open_closed(
      NodeId::from_uint64(0).minus(NodeId::from_uint64(1)), hi, lo));
  EXPECT_FALSE(
      NodeId::in_interval_open_closed(NodeId::from_uint64(6), hi, lo));
  EXPECT_FALSE(NodeId::in_interval_open_closed(hi, hi, lo));
}

TEST(NodeId, IntervalDegenerateWholeRing) {
  const NodeId a = NodeId::from_uint64(42);
  // (a, a] is the whole ring (single-node Chord owns everything).
  EXPECT_TRUE(NodeId::in_interval_open_closed(NodeId::from_uint64(7), a, a));
  EXPECT_TRUE(NodeId::in_interval_open_closed(a, a, a));
  // (a, a) is everything except a.
  EXPECT_TRUE(NodeId::in_interval_open_open(NodeId::from_uint64(7), a, a));
  EXPECT_FALSE(NodeId::in_interval_open_open(a, a, a));
}

TEST(NodeId, OrderingIsLexicographic) {
  EXPECT_TRUE(NodeId::from_uint64(1) < NodeId::from_uint64(2));
  EXPECT_TRUE(NodeId() < NodeId::power_of_two(159));
}

TEST(NodeId, ShortHexPrefix) {
  const NodeId id = NodeId::hash_of("x");
  EXPECT_EQ(id.short_hex(), id.to_hex().substr(0, 8));
}

}  // namespace
}  // namespace asa_repro::p2p
