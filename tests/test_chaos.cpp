// Chaos campaign engine: fault-plan serialisation, invariant checking,
// randomized budgeted campaigns, delta-debugged shrinking and replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "sim/fault_plan.hpp"
#include "storage/chaos.hpp"
#include "storage/invariant_checker.hpp"

namespace asa_repro::storage {
namespace {

using sim::FaultEvent;
using sim::FaultPlan;

// ---- FaultPlan data model. ----

TEST(FaultPlan, EventSerializationRoundTrips) {
  const FaultEvent events[] = {
      {.at = 0, .kind = FaultEvent::Kind::kCrash, .node = 3},
      {.at = 120'000, .kind = FaultEvent::Kind::kRestart, .node = 3},
      {.at = 5, .kind = FaultEvent::Kind::kPartition, .node = 1, .peer = 7},
      {.at = 6, .kind = FaultEvent::Kind::kHeal, .node = 1, .peer = 7},
      {.at = 7, .kind = FaultEvent::Kind::kDropRate, .rate = 0.25},
      {.at = 8, .kind = FaultEvent::Kind::kDupRate, .rate = 0.0},
      {.at = 9,
       .kind = FaultEvent::Kind::kByzantine,
       .node = 2,
       .behaviour = "equivocator"},
      {.at = 10, .kind = FaultEvent::Kind::kCorrupt, .node = 5},
      {.at = 11, .kind = FaultEvent::Kind::kUncorrupt, .node = 5},
  };
  for (const FaultEvent& event : events) {
    const auto parsed = FaultEvent::parse(event.serialize());
    ASSERT_TRUE(parsed.has_value()) << event.serialize();
    EXPECT_EQ(*parsed, event) << event.serialize();
  }
}

TEST(FaultPlan, RejectsMalformedEvents) {
  for (const char* line :
       {"", "crash", "12 nonsense 1", "12 crash", "12 byzantine 1 sneaky",
        "12 drop-rate 1.5", "12 drop-rate -0.1", "x crash 1",
        "12 partition 1", "12 crash 1 junk"}) {
    EXPECT_FALSE(FaultEvent::parse(line).has_value()) << line;
  }
}

TEST(FaultPlan, PlanSerializationRoundTrips) {
  FaultPlan plan;
  plan.add({.at = 50'000, .kind = FaultEvent::Kind::kCrash, .node = 2});
  plan.add({.at = 90'000, .kind = FaultEvent::Kind::kRestart, .node = 2});
  plan.add({.at = 10'000, .kind = FaultEvent::Kind::kDropRate, .rate = 0.1});
  const auto parsed = FaultPlan::parse(plan.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlan, ParseSkipsBlankAndCommentLines) {
  const auto plan =
      FaultPlan::parse("# header\n\n100 crash 4\n\n# tail\n200 restart 4\n");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->size(), 2u);
}

TEST(FaultPlan, WithoutRemovesPositions) {
  FaultPlan plan;
  for (std::uint32_t i = 0; i < 5; ++i) {
    plan.add({.at = 100 * i, .kind = FaultEvent::Kind::kCrash, .node = i});
  }
  const FaultPlan reduced = plan.without({1, 3});
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_EQ(reduced.events()[0].node, 0u);
  EXPECT_EQ(reduced.events()[1].node, 2u);
  EXPECT_EQ(reduced.events()[2].node, 4u);
}

TEST(FaultPlan, SortByTimeIsStable) {
  FaultPlan plan;
  plan.add({.at = 200, .kind = FaultEvent::Kind::kCrash, .node = 1});
  plan.add({.at = 100, .kind = FaultEvent::Kind::kCrash, .node = 2});
  plan.add({.at = 100, .kind = FaultEvent::Kind::kRestart, .node = 2});
  plan.sort_by_time();
  EXPECT_EQ(plan.events()[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(plan.events()[1].kind, FaultEvent::Kind::kRestart);
  EXPECT_EQ(plan.events()[2].node, 1u);
}

// ---- Replay files. ----

TEST(ChaosReplay, EncodeDecodeRoundTrips) {
  ChaosConfig config;
  config.seed = 99;
  config.nodes = 10;
  config.equivocators = 2;
  config.burst = 2;
  config.fault_budget = 3;
  FaultPlan plan;
  plan.add({.at = 70'000,
            .kind = FaultEvent::Kind::kByzantine,
            .node = 1,
            .behaviour = "withholder"});
  const auto decoded = decode_replay(encode_replay(config, plan));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first.seed, 99u);
  EXPECT_EQ(decoded->first.nodes, 10u);
  EXPECT_EQ(decoded->first.equivocators, 2u);
  EXPECT_EQ(decoded->first.burst, 2);
  EXPECT_EQ(decoded->first.fault_budget, 3u);
  EXPECT_EQ(decoded->second, plan);
}

TEST(ChaosReplay, AutoBudgetRoundTrips) {
  const auto decoded = decode_replay(encode_replay(ChaosConfig{}, {}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first.fault_budget, ChaosConfig::kAutoBudget);
}

TEST(ChaosReplay, RejectsMalformedInput) {
  EXPECT_FALSE(decode_replay("no marker at all").has_value());
  EXPECT_FALSE(decode_replay("unknown-key 3\nplan\n").has_value());
  EXPECT_FALSE(decode_replay("nodes 12\nplan\n99 bogus 1\n").has_value());
}

// ---- Plan generation respects the budget. ----

TEST(ChaosGenerate, PlansAreDeterministicPerSeed) {
  ChaosConfig config;
  sim::Rng a(7), b(7), c(8);
  const FaultPlan plan_a = generate_fault_plan(config, a);
  EXPECT_EQ(plan_a, generate_fault_plan(config, b));
  // Different stream, (almost surely) different plan.
  EXPECT_NE(plan_a.serialize(), generate_fault_plan(config, c).serialize());
}

TEST(ChaosGenerate, EveryInjectedFaultHeals) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosConfig config;
    sim::Rng rng(seed);
    const FaultPlan plan = generate_fault_plan(config, rng);
    int crashes = 0, restarts = 0, partitions = 0, heals = 0;
    double final_drop = 0.0, final_dup = 0.0;
    for (const FaultEvent& e : plan.events()) {
      switch (e.kind) {
        case FaultEvent::Kind::kCrash: ++crashes; break;
        case FaultEvent::Kind::kRestart: ++restarts; break;
        case FaultEvent::Kind::kPartition: ++partitions; break;
        case FaultEvent::Kind::kHeal: ++heals; break;
        case FaultEvent::Kind::kDropRate: final_drop = e.rate; break;
        case FaultEvent::Kind::kDupRate: final_dup = e.rate; break;
        default: break;
      }
    }
    EXPECT_EQ(crashes, restarts) << "seed " << seed;
    EXPECT_EQ(partitions, heals) << "seed " << seed;
    EXPECT_EQ(final_drop, 0.0) << "seed " << seed;
    EXPECT_EQ(final_dup, 0.0) << "seed " << seed;
  }
}

TEST(ChaosGenerate, ZeroBudgetMeansNoNodeFaults) {
  ChaosConfig config;
  config.fault_budget = 0;
  sim::Rng rng(5);
  const FaultPlan plan = generate_fault_plan(config, rng);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_TRUE(e.kind == FaultEvent::Kind::kPartition ||
                e.kind == FaultEvent::Kind::kHeal ||
                e.kind == FaultEvent::Kind::kDropRate ||
                e.kind == FaultEvent::Kind::kDupRate)
        << e.serialize();
  }
}

// ---- Invariant checker. ----

TEST(InvariantChecker, CleanClusterHasNoViolations) {
  ClusterConfig config;
  config.nodes = 12;
  config.replication_factor = 4;
  config.seed = 31;
  AsaCluster cluster(config);
  InvariantChecker checker(cluster);
  const Guid guid = Guid::named("clean");
  const Pid pid = Pid::of(block_from("clean v0"));
  checker.note_submitted(guid, pid.to_uint64());
  int committed = 0;
  cluster.version_history().append(
      guid, pid, [&](const commit::CommitResult& r) {
        committed += r.committed;
      });
  cluster.run();
  ASSERT_EQ(committed, 1);
  EXPECT_TRUE(checker.check().empty());
}

TEST(InvariantChecker, DetectsFabricatedDivergence) {
  ClusterConfig config;
  config.nodes = 12;
  config.replication_factor = 4;
  config.seed = 37;
  AsaCluster cluster(config);
  InvariantChecker checker(cluster);
  const Guid guid = Guid::named("forged");
  checker.note_submitted(guid, 1);
  checker.note_submitted(guid, 2);

  // Forge divergent histories on two honest members: same updates, opposite
  // orders — exactly what Byzantine equivocation produces.
  const auto members = cluster.peer_set(guid);
  ASSERT_GE(members.size(), 2u);
  const std::uint64_t key = guid.to_uint64();
  using Entry = commit::CommitPeer::CommittedEntry;
  ASSERT_TRUE(cluster.host(members[0]).peer().import_history(
      key, {Entry{10, 100, 1}, Entry{11, 101, 2}}));
  ASSERT_TRUE(cluster.host(members[1]).peer().import_history(
      key, {Entry{11, 101, 2}, Entry{10, 100, 1}}));

  const auto violations = checker.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(std::any_of(violations.begin(), violations.end(),
                          [](const Violation& v) {
                            return v.invariant == "history-prefix";
                          }));
  // Disabling the order check (lossy schedules) suppresses exactly that
  // category; the other invariants still run.
  for (const Violation& v : checker.check(/*check_order=*/false)) {
    EXPECT_NE(v.invariant, "history-prefix") << v.detail;
  }
}

TEST(InvariantChecker, DetectsNeverSubmittedPayload) {
  ClusterConfig config;
  config.nodes = 12;
  config.replication_factor = 4;
  config.seed = 41;
  AsaCluster cluster(config);
  InvariantChecker checker(cluster);
  const Guid guid = Guid::named("conjured");
  checker.note_submitted(guid, 7);  // Only payload 7 is legitimate.

  const auto members = cluster.peer_set(guid);
  using Entry = commit::CommitPeer::CommittedEntry;
  ASSERT_TRUE(cluster.host(members[0]).peer().import_history(
      guid.to_uint64(), {Entry{10, 100, 999}}));

  const auto violations = checker.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(std::any_of(violations.begin(), violations.end(),
                          [](const Violation& v) {
                            return v.invariant == "validity";
                          }));
}

TEST(InvariantChecker, ExcludesCrashedAndByzantineMembers) {
  ClusterConfig config;
  config.nodes = 12;
  config.replication_factor = 4;
  config.seed = 43;
  AsaCluster cluster(config);
  InvariantChecker checker(cluster);
  const Guid guid = Guid::named("excluded");
  const auto members = cluster.peer_set(guid);
  const auto before = checker.honest_members(guid).size();
  ASSERT_GE(before, 2u);
  cluster.crash_node(static_cast<std::size_t>(members[0]));
  cluster.make_byzantine(static_cast<std::size_t>(members[1]),
                         commit::Behaviour::kEquivocator);
  // The peer set itself may shift after the crash re-routes the ring; the
  // surviving honest members must exclude the equivocator.
  for (sim::NodeAddr addr : checker.honest_members(guid)) {
    EXPECT_NE(addr, members[1]);
    EXPECT_EQ(cluster.behaviour(static_cast<std::size_t>(addr)),
              commit::Behaviour::kHonest);
  }
}

// ---- End-to-end campaigns. ----

TEST(ChaosRun, BudgetedCampaignIsViolationFree) {
  // A miniature version of the asachaos acceptance campaign: every seed's
  // generated schedule keeps concurrent faults <= f, so all invariants and
  // the liveness expectations must hold.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ChaosConfig config;
    config.seed = seed;
    config.updates = 6;
    sim::Rng rng(seed ^ 0x63686170'73656564ull);
    const FaultPlan plan = generate_fault_plan(config, rng);
    const ChaosReport report = run_plan(config, plan);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.violations.size() << " violations, '"
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations[0].invariant +
                                           ": " +
                                           report.violations[0].detail)
                             << "'";
    EXPECT_TRUE(report.quiesced);
    EXPECT_EQ(report.committed, config.updates);
    EXPECT_EQ(report.failed, 0);
  }
}

TEST(ChaosRun, EquivocatorsPastFBreakAgreementAndShrink) {
  // Two equivocators at r = 4 exceed f = 1; with concurrent same-GUID
  // submissions they let conflicting proposals both commit, which the
  // checker must flag — and the shrinker must reduce the schedule to a
  // minimal reproducer whose replay still violates.
  ChaosConfig config;
  config.equivocators = 2;
  config.burst = 2;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 5 && !found; ++seed) {
    config.seed = seed;
    sim::Rng rng(seed ^ 0x63686170'73656564ull);
    const FaultPlan plan = generate_fault_plan(config, rng);
    const ChaosReport report = run_plan(config, plan);
    if (report.ok()) continue;
    found = true;
    EXPECT_TRUE(std::any_of(report.violations.begin(),
                            report.violations.end(), [](const Violation& v) {
                              return v.invariant == "history-prefix";
                            }));

    std::size_t runs = 0;
    const FaultPlan minimal = shrink_plan(config, plan, &runs);
    EXPECT_LE(minimal.size(), 5u);
    EXPECT_LE(minimal.size(), plan.size());
    EXPECT_GE(runs, 1u);

    // The replay file reproduces the violation deterministically.
    const auto decoded = decode_replay(encode_replay(config, minimal));
    ASSERT_TRUE(decoded.has_value());
    const ChaosReport replayed =
        run_plan(decoded->first, decoded->second);
    EXPECT_FALSE(replayed.ok());
    // Determinism: the same run again yields the same violation list.
    const ChaosReport again = run_plan(decoded->first, decoded->second);
    ASSERT_EQ(replayed.violations.size(), again.violations.size());
    for (std::size_t i = 0; i < replayed.violations.size(); ++i) {
      EXPECT_EQ(replayed.violations[i].detail, again.violations[i].detail);
    }
  }
  EXPECT_TRUE(found) << "no seed in 1..5 produced a violation at 2 "
                        "equivocators past f";
}

// ---- Durability faults (disk-level chaos). ----

TEST(FaultPlan, DurabilityEventSerializationRoundTrips) {
  const FaultEvent events[] = {
      {.at = 10, .kind = FaultEvent::Kind::kTornWrite, .node = 3},
      {.at = 11, .kind = FaultEvent::Kind::kFlushDrop, .node = 3, .arg = 2},
      {.at = 12,
       .kind = FaultEvent::Kind::kBitRot,
       .node = 4,
       .arg = 123'456},
      {.at = 13, .kind = FaultEvent::Kind::kDiskStall, .node = 5},
      {.at = 14, .kind = FaultEvent::Kind::kDiskFull, .node = 5, .arg = 64},
      {.at = 15, .kind = FaultEvent::Kind::kDiskOk, .node = 5},
  };
  for (const FaultEvent& event : events) {
    const auto parsed = FaultEvent::parse(event.serialize());
    ASSERT_TRUE(parsed.has_value()) << event.serialize();
    EXPECT_EQ(*parsed, event) << event.serialize();
  }
  // Arg-carrying kinds without the arg are malformed.
  EXPECT_FALSE(FaultEvent::parse("11 flush-drop 3").has_value());
  EXPECT_FALSE(FaultEvent::parse("12 bit-rot 4").has_value());
  EXPECT_FALSE(FaultEvent::parse("14 disk-full 5").has_value());
}

TEST(ChaosReplay, DurabilityFlagAndFaultsRoundTrip) {
  ChaosConfig config;
  config.seed = 7;
  config.durability = false;
  FaultPlan plan;
  plan.add({.at = 100, .kind = FaultEvent::Kind::kTornWrite, .node = 1});
  plan.add({.at = 200, .kind = FaultEvent::Kind::kBitRot, .node = 1,
            .arg = 99});
  const std::string replay = encode_replay(config, plan);
  EXPECT_NE(replay.find("durability off"), std::string::npos);
  const auto decoded = decode_replay(replay);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->first.durability);
  EXPECT_EQ(decoded->second, plan);
  // Headers predating the flag parse to the default (on); junk is refused.
  const auto old = ChaosConfig::parse("nodes 12\nseed 3\n");
  ASSERT_TRUE(old.has_value());
  EXPECT_TRUE(old->durability);
  EXPECT_FALSE(ChaosConfig::parse("durability maybe\n").has_value());
}

TEST(ChaosGenerate, DurabilityEpisodesAppearOnlyWhenEnabled) {
  const auto is_disk_fault = [](const FaultEvent& e) {
    return e.kind == FaultEvent::Kind::kTornWrite ||
           e.kind == FaultEvent::Kind::kFlushDrop ||
           e.kind == FaultEvent::Kind::kBitRot ||
           e.kind == FaultEvent::Kind::kDiskStall ||
           e.kind == FaultEvent::Kind::kDiskFull ||
           e.kind == FaultEvent::Kind::kDiskOk;
  };
  int with = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosConfig config;
    sim::Rng rng(seed);
    const FaultPlan plan = generate_fault_plan(config, rng);
    with += std::any_of(plan.events().begin(), plan.events().end(),
                        is_disk_fault);
    ChaosConfig volatile_config;
    volatile_config.durability = false;
    sim::Rng rng2(seed);
    const FaultPlan volatile_plan =
        generate_fault_plan(volatile_config, rng2);
    EXPECT_TRUE(std::none_of(volatile_plan.events().begin(),
                             volatile_plan.events().end(), is_disk_fault))
        << "seed " << seed;
  }
  EXPECT_GE(with, 5) << "disk-fault episodes should be common across seeds";
}

TEST(ChaosRun, HandWrittenDurabilityFaultScheduleStaysClean) {
  // Torn write folded into a crash, bit-rot while down, partial flush on a
  // second node — the mix the CI campaign relies on, as one fixed plan.
  ChaosConfig config;
  config.seed = 13;
  config.updates = 6;
  FaultPlan plan;
  plan.add({.at = 70'000, .kind = FaultEvent::Kind::kTornWrite, .node = 2});
  plan.add({.at = 130'000, .kind = FaultEvent::Kind::kCrash, .node = 2});
  plan.add({.at = 300'000, .kind = FaultEvent::Kind::kBitRot, .node = 2,
            .arg = 1'000'003});
  plan.add({.at = 700'000, .kind = FaultEvent::Kind::kRestart, .node = 2});
  plan.add({.at = 900'000, .kind = FaultEvent::Kind::kCrash, .node = 7});
  plan.add({.at = 1'000'000, .kind = FaultEvent::Kind::kFlushDrop,
            .node = 7, .arg = 2});
  plan.add({.at = 1'400'000, .kind = FaultEvent::Kind::kRestart, .node = 7});
  const ChaosReport report = run_plan(config, plan);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].detail);
  EXPECT_EQ(report.committed, 6);
}

// ---- Membership churn + WAN adversity + contention workload. ----

TEST(FaultPlan, ChurnAndLinkEventSerializationRoundTrips) {
  const FaultEvent events[] = {
      {.at = 10, .kind = FaultEvent::Kind::kJoin, .node = 0},
      {.at = 11, .kind = FaultEvent::Kind::kLeave, .node = 4},
      {.at = 12, .kind = FaultEvent::Kind::kDepart, .node = 9},
      {.at = 13,
       .kind = FaultEvent::Kind::kLinkProfile,
       .node = 1,
       .peer = 7,
       .behaviour = "wan"},
      {.at = 14,
       .kind = FaultEvent::Kind::kLinkProfile,
       .node = 7,
       .peer = 1,
       .behaviour = "default"},
  };
  for (const FaultEvent& event : events) {
    const auto parsed = FaultEvent::parse(event.serialize());
    ASSERT_TRUE(parsed.has_value()) << event.serialize();
    EXPECT_EQ(*parsed, event) << event.serialize();
  }
}

TEST(FaultPlan, RejectsMalformedChurnAndLinkEvents) {
  for (const char* line :
       {"10 join", "10 leave", "10 depart", "10 join 1 2",
        "10 link-profile 1 2", "10 link-profile 1 2 dialup",
        "10 link-profile 1", "10 link-profile 1 2 wan junk"}) {
    EXPECT_FALSE(FaultEvent::parse(line).has_value()) << line;
  }
}

TEST(ChaosReplay, ChurnWanAndWorkloadKeysRoundTrip) {
  ChaosConfig config;
  config.seed = 5;
  config.churn = true;
  config.wan = true;
  config.writers = 4;
  config.zipf = 1.2;
  config.read_fraction = 0.25;
  config.open_loop = true;
  FaultPlan plan;
  plan.add({.at = 200'000, .kind = FaultEvent::Kind::kJoin, .node = 0});
  plan.add({.at = 400'000,
            .kind = FaultEvent::Kind::kLinkProfile,
            .node = 2,
            .peer = 5,
            .behaviour = "sat"});
  const std::string replay = encode_replay(config, plan);
  const auto decoded = decode_replay(replay);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->first.churn);
  EXPECT_TRUE(decoded->first.wan);
  EXPECT_EQ(decoded->first.writers, 4);
  EXPECT_NEAR(decoded->first.zipf, 1.2, 0.01);
  EXPECT_NEAR(decoded->first.read_fraction, 0.25, 0.01);
  EXPECT_TRUE(decoded->first.open_loop);
  EXPECT_EQ(decoded->second, plan);
  // Headers predating the knobs parse to the defaults (all off).
  const auto old = ChaosConfig::parse("nodes 12\nseed 3\n");
  ASSERT_TRUE(old.has_value());
  EXPECT_FALSE(old->churn);
  EXPECT_FALSE(old->wan);
  EXPECT_EQ(old->writers, 0);
  EXPECT_FALSE(old->open_loop);
  // Junk values are refused.
  EXPECT_FALSE(ChaosConfig::parse("churn maybe\n").has_value());
  EXPECT_FALSE(ChaosConfig::parse("wan always\n").has_value());
  EXPECT_FALSE(ChaosConfig::parse("writers -2\n").has_value());
}

TEST(ChaosGenerate, ChurnAndWanEpisodesAppearOnlyWhenEnabled) {
  const auto is_churn = [](const FaultEvent& e) {
    return e.kind == FaultEvent::Kind::kJoin ||
           e.kind == FaultEvent::Kind::kLeave ||
           e.kind == FaultEvent::Kind::kDepart;
  };
  const auto is_link = [](const FaultEvent& e) {
    return e.kind == FaultEvent::Kind::kLinkProfile;
  };
  int churn_plans = 0, link_plans = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosConfig off;
    sim::Rng rng_off(seed);
    const FaultPlan plain = generate_fault_plan(off, rng_off);
    EXPECT_TRUE(std::none_of(plain.events().begin(), plain.events().end(),
                             [&](const FaultEvent& e) {
                               return is_churn(e) || is_link(e);
                             }))
        << "seed " << seed;

    ChaosConfig on;
    on.churn = true;
    on.wan = true;
    sim::Rng rng_on(seed);
    const FaultPlan adverse = generate_fault_plan(on, rng_on);
    churn_plans += std::any_of(adverse.events().begin(),
                               adverse.events().end(), is_churn);
    link_plans += std::any_of(adverse.events().begin(),
                              adverse.events().end(), is_link);
    // Every profiled link is reset to defaults before the horizon, so the
    // last link-profile event per directed pair must be "default".
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> last;
    FaultPlan sorted = adverse;
    sorted.sort_by_time();
    for (const FaultEvent& e : sorted.events()) {
      if (is_link(e)) last[{e.node, e.peer}] = e.behaviour;
    }
    for (const auto& [link, klass] : last) {
      EXPECT_EQ(klass, "default")
          << "seed " << seed << " link " << link.first << "->"
          << link.second << " left on " << klass;
    }
  }
  EXPECT_GE(churn_plans, 8);
  EXPECT_GE(link_plans, 8);
}

TEST(ChaosRun, ChurnWanContentionCampaignStaysClean) {
  // The acceptance campaign in miniature: ring churn, WAN link adversity
  // and a zipf multi-writer contention workload, all at once, with zero
  // invariant violations.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ChaosConfig config;
    config.seed = seed;
    config.updates = 8;
    config.churn = true;
    config.wan = true;
    config.writers = 4;
    config.zipf = 1.2;
    config.read_fraction = 0.2;
    sim::Rng rng(seed ^ 0x63686170'73656564ull);
    const FaultPlan plan = generate_fault_plan(config, rng);
    const ChaosReport report = run_plan(config, plan);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": "
        << (report.violations.empty()
                ? ""
                : report.violations[0].invariant + ": " +
                      report.violations[0].detail);
    EXPECT_TRUE(report.quiesced) << "seed " << seed;
    EXPECT_GT(report.committed, 0) << "seed " << seed;
  }
}

TEST(ChaosRun, HandWrittenChurnScheduleStaysClean) {
  // A fixed plan mixing a join, a graceful leave and an abrupt departure
  // with commits in flight — the deterministic core of the churn story.
  ChaosConfig config;
  config.seed = 17;
  config.updates = 8;
  config.churn = true;
  FaultPlan plan;
  plan.add({.at = 200'000, .kind = FaultEvent::Kind::kJoin, .node = 0});
  plan.add({.at = 500'000, .kind = FaultEvent::Kind::kLeave, .node = 3});
  plan.add({.at = 900'000, .kind = FaultEvent::Kind::kDepart, .node = 7});
  plan.add({.at = 1'100'000, .kind = FaultEvent::Kind::kJoin, .node = 0});
  const ChaosReport report = run_plan(config, plan);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].invariant + ": " +
                                         report.violations[0].detail);
  EXPECT_EQ(report.committed, 8);
}

TEST(ChaosRun, ChurnSmokePassesAndCounterfactualLosesData) {
  const DurabilitySmokeReport smoke = run_churn_smoke(1);
  EXPECT_TRUE(smoke.ok()) << (smoke.failures.empty() ? ""
                                                     : smoke.failures[0]);
  EXPECT_FALSE(smoke.notes.empty());
  // handoff=false runs only the counterfactual, whose expectations are
  // that acknowledged data IS lost and the handoff-ack invariant fires.
  const DurabilitySmokeReport loss = run_churn_smoke(1, /*handoff=*/false);
  EXPECT_TRUE(loss.ok()) << (loss.failures.empty() ? "" : loss.failures[0]);
}

TEST(ChaosRun, SoakWindowsAreCleanAndReproducible) {
  ChaosConfig config;
  config.seed = 3;
  config.updates = 6;
  const SoakReport soak = run_soak(config, 2 * config.horizon);
  EXPECT_TRUE(soak.ok()) << (soak.failures.empty()
                                 ? (soak.violations.empty()
                                        ? ""
                                        : soak.violations[0].detail)
                                 : soak.failures[0]);
  EXPECT_EQ(soak.windows, 2);
  ASSERT_EQ(soak.commits_per_sec.size(), 2u);
  for (const double rate : soak.commits_per_sec) EXPECT_GT(rate, 0.0);
  // Window seeds are derived, not sequential: the same soak re-run is
  // bit-identical.
  const SoakReport again = run_soak(config, 2 * config.horizon);
  EXPECT_EQ(soak.commits_per_sec, again.commits_per_sec);
}

TEST(ChaosRun, RestartMidCommitRecovers) {
  // A hand-written plan: crash a node early, restart it mid-workload. The
  // run must stay violation-free and every update must commit.
  ChaosConfig config;
  config.seed = 11;
  config.updates = 4;
  FaultPlan plan;
  plan.add({.at = 80'000, .kind = FaultEvent::Kind::kCrash, .node = 2});
  plan.add({.at = 600'000, .kind = FaultEvent::Kind::kRestart, .node = 2});
  const ChaosReport report = run_plan(config, plan);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].detail);
  EXPECT_EQ(report.committed, 4);
}

}  // namespace
}  // namespace asa_repro::storage
