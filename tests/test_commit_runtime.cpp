// The deployed commit protocol: peer-set members + service endpoint over
// the simulated network. Covers the no-contention path, concurrent-update
// serialisation, deadlock + timeout/retry, and Byzantine tolerance — the
// behaviour the paper claims (section 2.2) but never tests.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "commit/endpoint.hpp"
#include "commit/machine_cache.hpp"
#include "commit/peer.hpp"
#include "storage/version_history.hpp"

namespace asa_repro::commit {
namespace {

constexpr std::uint64_t kGuid = 77;

/// A little harness: r peers (addresses 0..r-1) plus client endpoints at
/// 100, 101, ...
struct Harness {
  explicit Harness(std::uint32_t r, std::uint64_t seed = 1,
                   RetryPolicy policy = {},
                   sim::LatencyModel latency = {500, 5'000})
      : machine(cache.machine_for(r)),
        network(sched, sim::Rng(seed), latency),
        f((r - 1) / 3) {
    for (std::uint32_t i = 0; i < r; ++i) peer_addrs.push_back(i);
    for (std::uint32_t i = 0; i < r; ++i) {
      peers.push_back(std::make_unique<CommitPeer>(
          network, i, peer_addrs, machine, Behaviour::kHonest, &trace));
    }
    policy_ = policy;
  }

  CommitEndpoint& endpoint(std::uint32_t index = 0) {
    while (endpoints.size() <= index) {
      endpoints.push_back(std::make_unique<CommitEndpoint>(
          network, static_cast<sim::NodeAddr>(100 + endpoints.size()),
          peer_addrs, f, policy_,
          sim::Rng(9000 + endpoints.size())));
    }
    return *endpoints[index];
  }

  void make_byzantine(std::uint32_t index, Behaviour behaviour) {
    peers[index] = std::make_unique<CommitPeer>(
        network, index, peer_addrs, machine, behaviour, &trace);
  }

  /// All honest peers' committed update-id sequences for kGuid.
  std::vector<std::vector<std::uint64_t>> honest_histories() const {
    std::vector<std::vector<std::uint64_t>> out;
    for (const auto& p : peers) {
      if (p->behaviour() != Behaviour::kHonest) continue;
      std::vector<std::uint64_t> h;
      for (const auto& e : p->history(kGuid)) h.push_back(e.update_id);
      out.push_back(std::move(h));
    }
    return out;
  }

  MachineCache cache;
  const fsm::StateMachine& machine;
  sim::Scheduler sched;
  sim::Network network;
  sim::Trace trace;
  std::uint32_t f;
  std::vector<sim::NodeAddr> peer_addrs;
  std::vector<std::unique_ptr<CommitPeer>> peers;
  std::vector<std::unique_ptr<CommitEndpoint>> endpoints;
  RetryPolicy policy_;
};

/// No pair of honest nodes commits two updates in opposite orders.
void expect_pairwise_order_consistent(
    const std::vector<std::vector<std::uint64_t>>& histories) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> order;
  for (const auto& h : histories) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      for (std::size_t j = i + 1; j < h.size(); ++j) {
        const auto key = std::minmax(h[i], h[j]);
        const int dir = h[i] < h[j] ? 1 : -1;
        const auto [it, inserted] = order.emplace(key, dir);
        if (!inserted) {
          EXPECT_EQ(it->second, dir)
              << "updates " << key.first << " and " << key.second
              << " committed in opposite orders on different honest nodes";
        }
      }
    }
  }
}

// ---- Single update, no contention. ----

class SingleUpdate : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SingleUpdate, CommitsOnAllPeersAndConfirms) {
  const std::uint32_t r = GetParam();
  Harness h(r);
  CommitResult result;
  bool done = false;
  h.endpoint().submit(kGuid, 4242, [&](const CommitResult& cr) {
    result = cr;
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 1u);
  // Every peer committed it.
  for (const auto& p : h.peers) {
    ASSERT_EQ(p->history(kGuid).size(), 1u);
    EXPECT_EQ(p->history(kGuid)[0].payload, 4242u);
    EXPECT_EQ(p->live_instances(kGuid), 0u);
  }
  EXPECT_EQ(h.endpoint().stats().retries, 0u);
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, SingleUpdate,
                         ::testing::Values(4u, 7u, 13u));

TEST(SingleUpdateDetail, VoteAndCommitCountsAreExact) {
  // 4 honest peers, one update: each sends exactly one vote and one commit.
  Harness h(4);
  bool done = false;
  h.endpoint().submit(kGuid, 1, [&](const CommitResult&) { done = true; });
  h.sched.run();
  ASSERT_TRUE(done);
  for (const auto& p : h.peers) {
    EXPECT_EQ(p->stats().votes_sent, 1u);
    EXPECT_EQ(p->stats().commits_sent, 1u);
  }
}

// ---- Sequential updates serialise cleanly. ----

TEST(SequentialUpdates, AllCommitInSubmissionOrder) {
  Harness h(4);
  std::vector<std::uint64_t> committed_ids;
  int done = 0;
  for (int k = 0; k < 5; ++k) {
    // Chain submissions so each starts after the previous completes.
    std::function<void()> submit = [&, k] {
      h.endpoint().submit(kGuid, 1000 + k, [&](const CommitResult& cr) {
        EXPECT_TRUE(cr.committed);
        committed_ids.push_back(cr.update_id);
        ++done;
      });
    };
    if (k == 0) {
      submit();
      h.sched.run();
    } else {
      submit();
      h.sched.run();
    }
  }
  EXPECT_EQ(done, 5);
  const auto histories = h.honest_histories();
  for (const auto& hist : histories) {
    EXPECT_EQ(hist, committed_ids);
  }
}

// ---- Concurrent updates: agreement under contention. ----

class ConcurrentUpdates : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcurrentUpdates, HistoriesOrderConsistently) {
  RetryPolicy policy;
  policy.backoff = RetryPolicy::Backoff::kExponential;
  policy.base_timeout = 80'000;
  Harness h(4, GetParam(), policy);
  for (auto& p : h.peers) p->enable_abort(50'000, 60'000);

  int committed = 0;
  const int kClients = 3;
  for (int c = 0; c < kClients; ++c) {
    h.endpoint(c).submit(kGuid, 500 + c, [&](const CommitResult& cr) {
      if (cr.committed) ++committed;
    });
  }
  h.sched.run();
  EXPECT_EQ(committed, kClients);

  const auto histories = h.honest_histories();
  expect_pairwise_order_consistent(histories);
  // With aborts and retries, all honest peers end with identical histories
  // once the network is quiet and every client succeeded.
  for (std::size_t i = 1; i < histories.size(); ++i) {
    EXPECT_EQ(histories[i], histories[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentUpdates,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- Deadlock and the timeout/retry scheme (paper section 2.2). ----

TEST(Deadlock, VoteSplitIsBrokenByRetry) {
  // Two concurrent updates on 4 peers can split 2-2 and deadlock; the
  // endpoint's retry with fresh attempts plus peer-side aborts must ensure
  // both clients eventually succeed.
  RetryPolicy policy;
  policy.backoff = RetryPolicy::Backoff::kRandom;
  policy.base_timeout = 60'000;
  policy.max_attempts = 20;
  bool saw_retry_somewhere = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Harness h(4, seed, policy, sim::LatencyModel{400, 600});
    for (auto& p : h.peers) p->enable_abort(40'000, 50'000);
    int committed = 0;
    h.endpoint(0).submit(kGuid, 1, [&](const CommitResult& cr) {
      if (cr.committed) ++committed;
    });
    h.endpoint(1).submit(kGuid, 2, [&](const CommitResult& cr) {
      if (cr.committed) ++committed;
    });
    h.sched.run();
    EXPECT_EQ(committed, 2) << "seed " << seed;
    expect_pairwise_order_consistent(h.honest_histories());
    if (h.endpoint(0).stats().retries + h.endpoint(1).stats().retries > 0) {
      saw_retry_somewhere = true;
    }
  }
  // Across a dozen seeds, at least one run must actually have deadlocked
  // and retried — otherwise this test exercises nothing.
  EXPECT_TRUE(saw_retry_somewhere);
}

// ---- Byzantine behaviours (f faulty of 3f+1). ----

struct ByzCase {
  std::uint32_t r;
  Behaviour behaviour;
  std::uint64_t seed;
};

class ByzantineTolerance : public ::testing::TestWithParam<ByzCase> {};

TEST_P(ByzantineTolerance, HonestPeersStillCommitAndServiceReadsAgree) {
  const ByzCase c = GetParam();
  RetryPolicy policy;
  policy.base_timeout = 100'000;
  policy.max_attempts = 20;
  Harness h(c.r, c.seed, policy);
  const std::uint32_t f = h.f;
  for (std::uint32_t i = 0; i < f; ++i) h.make_byzantine(i, c.behaviour);
  for (auto& p : h.peers) p->enable_abort(60'000, 80'000);

  int committed = 0;
  h.endpoint(0).submit(kGuid, 11, [&](const CommitResult& cr) {
    if (cr.committed) ++committed;
  });
  h.endpoint(1).submit(kGuid, 22, [&](const CommitResult& cr) {
    if (cr.committed) ++committed;
  });
  h.sched.run();

  EXPECT_EQ(committed, 2);

  // A Byzantine member can drive two updates through their thresholds
  // concurrently, so honest peers' *local finish orders* may differ — a
  // reproduction finding documented in EXPERIMENTS.md. The protocol-level
  // guarantee that must hold is at the service layer: every honest peer
  // ends with the same committed set (by request id), and the f+1 read
  // rule resolves a full-length agreed history.
  const auto histories = h.honest_histories();
  ASSERT_FALSE(histories.empty());
  std::set<std::uint64_t> reference;
  for (const auto& p : h.peers) {
    if (p->behaviour() != Behaviour::kHonest) continue;
    std::set<std::uint64_t> requests;
    for (const auto& e : p->history(kGuid)) requests.insert(e.request_id);
    if (reference.empty()) {
      reference = requests;
    } else {
      EXPECT_EQ(requests, reference);
    }
  }
  EXPECT_EQ(reference.size(), 2u);  // Both logical updates everywhere.

  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      request_histories;
  for (const auto& p : h.peers) {
    if (p->behaviour() != Behaviour::kHonest) continue;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hist;
    for (const auto& e : p->history(kGuid)) {
      hist.emplace_back(e.request_id, e.payload);
    }
    request_histories.push_back(std::move(hist));
  }
  const auto agreed = storage::agree_history(request_histories, f);
  EXPECT_EQ(agreed.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ByzantineTolerance,
    ::testing::Values(ByzCase{4, Behaviour::kCrash, 1},
                      ByzCase{4, Behaviour::kCrash, 2},
                      ByzCase{4, Behaviour::kEquivocator, 1},
                      ByzCase{4, Behaviour::kEquivocator, 2},
                      ByzCase{4, Behaviour::kWithholder, 1},
                      ByzCase{7, Behaviour::kCrash, 1},
                      ByzCase{7, Behaviour::kEquivocator, 1},
                      ByzCase{7, Behaviour::kWithholder, 1}),
    [](const ::testing::TestParamInfo<ByzCase>& info) {
      const char* b = info.param.behaviour == Behaviour::kCrash
                          ? "Crash"
                          : info.param.behaviour == Behaviour::kEquivocator
                                ? "Equivocator"
                                : "Withholder";
      return std::string(b) + "R" + std::to_string(info.param.r) + "S" +
             std::to_string(info.param.seed);
    });

TEST(ByzantineLimits, MoreThanFCrashesStallsButStaysSafe) {
  // With f+1 crash faults (beyond the tolerance bound) the protocol cannot
  // gather 2f+1 votes; the endpoint must fail cleanly after max_attempts,
  // and no honest node commits anything.
  RetryPolicy policy;
  policy.base_timeout = 50'000;
  policy.max_attempts = 3;
  Harness h(4, 3, policy);
  h.make_byzantine(0, Behaviour::kCrash);
  h.make_byzantine(1, Behaviour::kCrash);

  bool done = false;
  CommitResult result;
  h.endpoint().submit(kGuid, 9, [&](const CommitResult& cr) {
    result = cr;
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.committed);
  EXPECT_EQ(result.attempts, 3u);
  for (const auto& histories = h.honest_histories();
       const auto& hist : histories) {
    EXPECT_TRUE(hist.empty());
  }
}

TEST(ByzantineDetail, EquivocatorCannotForgeCommit) {
  // A single equivocator on 4 peers votes+commits for a update no client
  // ever confirmed to a quorum... here: equivocator alone must not drive
  // any honest node to commit, because f byzantine commits are below the
  // f+1 finish threshold and no honest votes exist.
  Harness h(4);
  h.make_byzantine(0, Behaviour::kEquivocator);
  // Inject a vote frame from nowhere to wake the equivocator only.
  WireMessage spark{WireMessage::Kind::kVote, kGuid, 555, 555, 0};
  h.network.send(99, 0, spark.serialize());
  h.sched.run_until(5'000'000);
  for (const auto& hist : h.honest_histories()) {
    EXPECT_TRUE(hist.empty());
  }
}

// ---- Message-loss robustness. ----

TEST(MessageLoss, RetriesOvercomeDrops) {
  RetryPolicy policy;
  policy.base_timeout = 80'000;
  policy.max_attempts = 30;
  Harness h(4, 5, policy);
  h.network.set_drop_probability(0.10);
  for (auto& p : h.peers) p->enable_abort(60'000, 70'000);

  int committed = 0;
  h.endpoint().submit(kGuid, 77, [&](const CommitResult& cr) {
    if (cr.committed) ++committed;
  });
  h.sched.run();
  EXPECT_EQ(committed, 1);
  expect_pairwise_order_consistent(h.honest_histories());
}

TEST(MessageDuplication, ProtocolSurvivesDuplicatedFrames) {
  // Networks duplicate; the per-sender deduplication at honest peers must
  // keep vote/commit counts honest so the run behaves exactly like a clean
  // one (same histories, same agreement).
  RetryPolicy policy;
  policy.base_timeout = 80'000;
  Harness h(4, 7, policy);
  h.network.set_duplicate_probability(0.4);
  for (auto& p : h.peers) p->enable_abort(60'000, 70'000);
  int committed = 0;
  h.endpoint(0).submit(kGuid, 1, [&](const CommitResult& cr) {
    if (cr.committed) ++committed;
  });
  h.endpoint(1).submit(kGuid, 2, [&](const CommitResult& cr) {
    if (cr.committed) ++committed;
  });
  h.sched.run();
  EXPECT_EQ(committed, 2);
  expect_pairwise_order_consistent(h.honest_histories());
  // Duplicates were actually delivered and dropped at the protocol layer.
  EXPECT_GT(h.network.stats().duplicated, 0u);
  std::uint64_t dropped = 0;
  for (const auto& p : h.peers) dropped += p->stats().duplicates_dropped;
  EXPECT_GT(dropped, 0u);
}

// ---- Duplicate protection. ----

TEST(Duplicates, SecondVoteFromSamePeerDropped) {
  Harness h(4);
  // Craft two identical votes from peer 1 to peer 0.
  WireMessage vote{WireMessage::Kind::kVote, kGuid, 5, 5, 0};
  h.network.send(1, 0, vote.serialize());
  h.network.send(1, 0, vote.serialize());
  h.sched.run();
  EXPECT_EQ(h.peers[0]->stats().votes_received, 2u);
  EXPECT_EQ(h.peers[0]->stats().duplicates_dropped, 1u);
}

TEST(Duplicates, GarbageFramesIgnored) {
  Harness h(4);
  h.network.send(1, 0, "not a frame");
  h.network.send(1, 0, std::string(33, '\xFF'));
  h.sched.run();
  EXPECT_EQ(h.peers[0]->stats().votes_received, 0u);
  EXPECT_EQ(h.peers[0]->stats().updates_received, 0u);
}

// ---- Retry policy corners all drive to success under contention. ----

class RetrySchemes : public ::testing::TestWithParam<int> {};

TEST_P(RetrySchemes, AllCornersSucceed) {
  RetryPolicy policy;
  policy.backoff = GetParam() / 2 == 0 ? RetryPolicy::Backoff::kRandom
                                       : RetryPolicy::Backoff::kExponential;
  policy.order = GetParam() % 2 == 0 ? RetryPolicy::ServerOrder::kFixed
                                     : RetryPolicy::ServerOrder::kRandom;
  policy.base_timeout = 70'000;
  policy.max_attempts = 25;
  Harness h(4, 11 + GetParam(), policy);
  for (auto& p : h.peers) p->enable_abort(50'000, 60'000);
  int committed = 0;
  for (int c = 0; c < 3; ++c) {
    h.endpoint(c).submit(kGuid, c, [&](const CommitResult& cr) {
      if (cr.committed) ++committed;
    });
  }
  h.sched.run();
  EXPECT_EQ(committed, 3);
}

INSTANTIATE_TEST_SUITE_P(Corners, RetrySchemes, ::testing::Values(0, 1, 2, 3));

// ---- Machine cache (generation policy, section 4.2). ----

TEST(MachineCacheTest, GeneratesOncePerFactor) {
  MachineCache cache;
  const fsm::StateMachine& a = cache.machine_for(4);
  const fsm::StateMachine& b = cache.machine_for(4);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(cache.size(), 1u);
  (void)cache.machine_for(7);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(7));
  EXPECT_FALSE(cache.contains(13));
}

}  // namespace
}  // namespace asa_repro::commit
