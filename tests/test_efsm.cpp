// EFSMs (section 5.3): the expression library, the 9-state commit EFSM,
// its parameter independence, and trace equivalence of its expansion
// against every generated FSM family member.
#include <gtest/gtest.h>

#include <map>

#include <algorithm>

#include "commit/commit_efsm.hpp"
#include "commit/commit_model.hpp"
#include "core/efsm/efsm.hpp"
#include "core/efsm/efsm_code_renderer.hpp"
#include "core/efsm/efsm_doc_renderer.hpp"
#include "core/efsm/efsm_dot_renderer.hpp"
#include "core/equivalence.hpp"
#include "core/minimize.hpp"
#include "sim/rng.hpp"

namespace asa_repro::fsm {
namespace {

// ---- Expression library. ----

TEST(Expr, EvaluatesArithmeticAndComparisons) {
  const std::map<std::string, std::int64_t> env_map = {{"x", 5}, {"y", 2}};
  const ExprEnv env = env_from(env_map);
  EXPECT_EQ((var("x") + lit(3))->eval(env), 8);
  EXPECT_EQ((var("x") - var("y"))->eval(env), 3);
  EXPECT_EQ((var("x") * var("y"))->eval(env), 10);
  EXPECT_EQ((var("x") >= lit(5))->eval(env), 1);
  EXPECT_EQ((var("x") > lit(5))->eval(env), 0);
  EXPECT_EQ((var("x") < lit(6))->eval(env), 1);
  EXPECT_EQ((var("x") == lit(5))->eval(env), 1);
  EXPECT_EQ((var("x") != lit(5))->eval(env), 0);
}

TEST(Expr, BooleanConnectivesShortCircuit) {
  const std::map<std::string, std::int64_t> env_map = {{"t", 1}, {"f", 0}};
  const ExprEnv env = env_from(env_map);
  // "boom" is undefined; short-circuit must avoid evaluating it.
  EXPECT_EQ((var("f") && var("boom"))->eval(env), 0);
  EXPECT_EQ((var("t") || var("boom"))->eval(env), 1);
  EXPECT_EQ((!var("t"))->eval(env), 0);
  EXPECT_EQ((!var("f"))->eval(env), 1);
}

TEST(Expr, ToStringReadable) {
  EXPECT_EQ((var("votes") + lit(1))->to_string(), "votes + 1");
  EXPECT_EQ((lit(2) * var("f") + lit(1))->to_string(), "2 * f + 1");
  EXPECT_EQ(((var("a") + var("b")) * lit(3))->to_string(), "(a + b) * 3");
  EXPECT_EQ(((var("v") < lit(3)) && (var("c") >= lit(1)))->to_string(),
            "v < 3 && c >= 1");
}

TEST(Expr, UnknownNameThrows) {
  const std::map<std::string, std::int64_t> empty;
  EXPECT_THROW((void)var("missing")->eval(env_from(empty)),
               std::out_of_range);
}

// ---- Commit EFSM structure. ----

TEST(CommitEfsm, HasExactlyNineStates) {
  // Section 5.3: "The resulting EFSM contains 9 states."
  const Efsm efsm = commit::make_commit_efsm();
  EXPECT_EQ(efsm.states.size(), 9u);
}

TEST(CommitEfsm, StateSpaceIndependentOfReplicationFactor) {
  // The EFSM's states encode only threshold status, so the definition is a
  // single object — instantiating it with different parameters changes
  // variables' bounds, never the state count.
  const Efsm efsm = commit::make_commit_efsm();
  for (std::int64_t r : {4, 7, 13, 46}) {
    EfsmInstance inst(efsm, commit::commit_efsm_params(r));
    EXPECT_EQ(inst.efsm().states.size(), 9u);
  }
}

TEST(CommitEfsm, ValidatesCleanly) {
  EXPECT_NO_THROW(commit::make_commit_efsm().validate());
}

TEST(CommitEfsm, DescribeMentionsEveryState) {
  const Efsm efsm = commit::make_commit_efsm();
  const std::string text = efsm.describe();
  for (const EfsmState& s : efsm.states) {
    EXPECT_NE(text.find(s.name), std::string::npos) << s.name;
  }
  EXPECT_NE(text.find("votes_received"), std::string::npos);
}

TEST(CommitEfsm, MissingParameterThrows) {
  const Efsm efsm = commit::make_commit_efsm();
  EXPECT_THROW(EfsmInstance(efsm, {{"r", 4}}), std::invalid_argument);
}

TEST(EfsmValidate, CatchesBrokenDefinitions) {
  Efsm e;
  EXPECT_THROW(e.validate(), std::logic_error);  // No states.

  e.name = "broken";
  e.messages = {"m"};
  e.states.resize(1);
  e.states[0].name = "only";
  EfsmRule rule;
  rule.message = 0;
  EfsmBranch branch;
  branch.guard = lit(1);
  branch.target = 7;  // Out of range.
  rule.branches = {branch};
  e.states[0].rules = {rule};
  EXPECT_THROW(e.validate(), std::logic_error);

  e.states[0].rules[0].branches[0].target = 0;
  e.states[0].rules[0].branches[0].updates = {{"ghost", lit(1)}};
  EXPECT_THROW(e.validate(), std::logic_error);  // Unknown variable.
}

// ---- Interpreted EFSM runs. ----

TEST(CommitEfsm, NoContentionRun) {
  const Efsm efsm = commit::make_commit_efsm();
  EfsmInstance inst(efsm, commit::commit_efsm_params(4));
  EXPECT_EQ(inst.state_name(), "IDLE_FREE");

  const EfsmBranch* b = inst.deliver(commit::kUpdate);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->actions, (ActionList{"vote", "not_free"}));
  EXPECT_EQ(inst.state_name(), "CHOSEN_PENDING");

  b = inst.deliver(commit::kVote);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->actions.empty());
  EXPECT_EQ(inst.variable("votes_received"), 1);

  b = inst.deliver(commit::kVote);  // Total = 3 = threshold.
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->actions, (ActionList{"commit"}));
  EXPECT_EQ(inst.state_name(), "CHOSEN_COMMITTED");

  (void)inst.deliver(commit::kCommit);
  EXPECT_FALSE(inst.finished());
  b = inst.deliver(commit::kCommit);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->actions, (ActionList{"free"}));
  EXPECT_TRUE(inst.finished());
}

TEST(CommitEfsm, ResetRestoresInitialConfiguration) {
  const Efsm efsm = commit::make_commit_efsm();
  EfsmInstance inst(efsm, commit::commit_efsm_params(4));
  (void)inst.deliver(commit::kVote);
  (void)inst.deliver(commit::kNotFree);
  inst.reset();
  EXPECT_EQ(inst.state_name(), "IDLE_FREE");
  EXPECT_EQ(inst.variable("votes_received"), 0);
  EXPECT_EQ(inst.variable("commits_received"), 0);
}

// ---- The headline 5.3 result: EFSM == FSM family, for every member. ----

class EfsmEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EfsmEquivalence, ExpansionTraceEquivalentToGeneratedFsm) {
  const std::uint32_t r = GetParam();
  const Efsm efsm = commit::make_commit_efsm();
  const StateMachine expanded =
      expand_to_fsm(efsm, commit::commit_efsm_params(r));
  const StateMachine generated =
      commit::CommitModel(r).generate_state_machine();
  const auto divergence = find_divergence(expanded, generated);
  EXPECT_FALSE(divergence.has_value())
      << "r=" << r << ": " << divergence->reason;
}

INSTANTIATE_TEST_SUITE_P(ReplicationFactors, EfsmEquivalence,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 10u, 13u,
                                           25u));

TEST(EfsmExpansion, ExpansionMatchesPrunedSizeBeforeMerging) {
  // Expanding the EFSM enumerates reachable concrete configurations — the
  // same set the FSM pipeline reaches before merging (48 for r=4).
  const Efsm efsm = commit::make_commit_efsm();
  const StateMachine expanded =
      expand_to_fsm(efsm, commit::commit_efsm_params(4));
  EXPECT_EQ(minimize(expanded).state_count(), 33u);
}

// ---- EFSM diagram rendering. ----

TEST(EfsmDotRenderer, EmitsGuardedDiagram) {
  const Efsm efsm = commit::make_commit_efsm();
  const std::string dot = EfsmDotRenderer("bft_commit_efsm").render(efsm);
  EXPECT_EQ(dot.find("digraph \"bft_commit_efsm\""), 0u);
  for (const EfsmState& s : efsm.states) {
    EXPECT_NE(dot.find("\"" + s.name + "\""), std::string::npos) << s.name;
  }
  // Guards and updates appear on edges; trivial guards are omitted.
  EXPECT_NE(dot.find("votes_received + 1 >= 2 * f + 1"), std::string::npos);
  EXPECT_NE(dot.find("votes_received := votes_received + 1"),
            std::string::npos);
  EXPECT_EQ(dot.find("[1]"), std::string::npos);
  // Final state double-bordered; braces balanced.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(EfsmDocRenderer, EmitsMarkdownTables) {
  const Efsm efsm = commit::make_commit_efsm();
  EfsmDocOptions options;
  options.preamble = "Nine states, independent of the replication factor.";
  const std::string doc = EfsmDocRenderer(options).render(efsm);
  EXPECT_EQ(doc.find("# EFSM bft_commit"), 0u);
  EXPECT_NE(doc.find("- States: 9"), std::string::npos);
  EXPECT_NE(doc.find("`r` `f`"), std::string::npos);
  EXPECT_NE(doc.find("| `votes_received` | `0` | `r - 1` |"),
            std::string::npos);
  EXPECT_NE(doc.find("### `IDLE_FREE` *(start)*"), std::string::npos);
  EXPECT_NE(doc.find("### `FINISHED` *(final)*"), std::string::npos);
  EXPECT_NE(doc.find("No outgoing transitions."), std::string::npos);
  EXPECT_NE(doc.find("| message | guard | updates | actions | next state |"),
            std::string::npos);
  EXPECT_NE(doc.find("`->not_free`"), std::string::npos);
}

// ---- EFSM code rendering. ----

TEST(EfsmCodeRenderer, EmitsGuardedHandlers) {
  const Efsm efsm = commit::make_commit_efsm();
  CodeGenOptions options;
  options.class_name = "CommitEfsm";
  options.namespace_name = "gen";
  options.base_class = "asa_repro::commit::CommitActions";
  options.includes = {"commit/actions.hpp"};
  const std::string code = EfsmCodeRenderer(options).render(efsm);

  // Parameters become constructor arguments; variables become members with
  // the _-suffix rewrite applied inside guards.
  EXPECT_NE(code.find("explicit CommitEfsm(std::int64_t r, std::int64_t f)"),
            std::string::npos);
  EXPECT_NE(code.find("votes_received_ + 1 >= 2 * f_ + 1"),
            std::string::npos);
  EXPECT_NE(code.find("commits_received_ + 1 >= f_ + 1"), std::string::npos);
  EXPECT_NE(code.find("case State::IDLE_FREE: "), std::string::npos);
  EXPECT_NE(code.find("sendNotFree();"), std::string::npos);
  EXPECT_NE(code.find("state_ = State::CHOSEN_PENDING;"), std::string::npos);
  // 9 state names in the enum.
  for (const EfsmState& s : efsm.states) {
    EXPECT_NE(code.find(s.name), std::string::npos);
  }
}

}  // namespace
}  // namespace asa_repro::fsm
